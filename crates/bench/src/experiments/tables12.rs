//! Tables I & II — layer-wise hybrid-memory configurations found by the
//! Fig. 4 methodology, with clean accuracy and its deviation from baseline.

use super::{load_plan, load_trained, store_plan};
use crate::{cache_dir, Scale};
use ahw_attacks::Attack;
use ahw_core::hardware::apply_noise_plan;
use ahw_core::selection::{select_noise_sites, SelectionConfig};
use ahw_core::zoo::ArchId;
use ahw_nn::NnError;

/// One dataset row of Table I / II.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridTable {
    /// Dataset tag (`"CIFAR10"`-like / `"CIFAR100"`-like).
    pub dataset: String,
    /// Per-site cell (`"H"` or an `8T/6T` ratio), in site order.
    pub row: Vec<String>,
    /// Site labels for the header.
    pub site_labels: Vec<String>,
    /// Supply voltage of the plan.
    pub vdd: f32,
    /// Clean accuracy of the noise-injected model, percent.
    pub clean_accuracy: f32,
    /// Deviation from the baseline clean accuracy, percentage points.
    pub deviation: f32,
    /// Baseline adversarial accuracy at the probe ε, percent.
    pub baseline_adv: f32,
    /// Combined-plan adversarial accuracy at the probe ε, percent.
    pub plan_adv: f32,
    /// Probe FGSM ε the search used (adaptive, see `adaptive_probe_eps`).
    pub probe_eps: f32,
    /// The shortlist threshold that ended up in effect (the paper's 5 %,
    /// relaxed when nothing clears it — printed so runs are honest).
    pub threshold_used: f32,
}

/// Runs the Fig. 4 search for one architecture/dataset and renders its
/// table row. The shortlist threshold starts at the paper's 5 % and relaxes
/// (5 % → 2 % → 0 %) if no site clears it — with the scaled-down networks
/// and synthetic data, absolute improvements can fall below the paper's
/// margin while preserving the ordering.
///
/// # Errors
///
/// Propagates zoo/selection errors.
pub fn hybrid_config_table(
    arch: ArchId,
    num_classes: usize,
    scale: &Scale,
) -> Result<HybridTable, NnError> {
    let (trained, images, labels) = load_trained(arch, num_classes, scale)?;
    let spec = &trained.spec;
    let plan_key = format!("{}_{}c_w{:.4}_plan", arch.name(), num_classes, scale.width);
    let plans_dir = cache_dir();

    // probe ε: the paper fixes one FGSM strength; with a weaker (100-class,
    // width-scaled) model a too-strong probe floors every configuration at
    // 0 % and nothing can be ranked — pick adaptively.
    let probe_eps = super::adaptive_probe_eps(&spec.model, &images, &labels, scale.batch)?;
    eprintln!("  probe epsilon selected: {probe_eps}");

    let mut threshold_used = 0.05f32;
    let (plan, baseline, combined) = {
        let mut chosen = None;
        for threshold in [0.05f32, 0.02, 0.0] {
            threshold_used = threshold;
            let config = SelectionConfig {
                vdd: 0.68,
                attack: Attack::fgsm(probe_eps),
                improvement_threshold: threshold,
                batch: scale.batch,
                // write-ahead search journal: a killed table run resumes
                // from completed candidates instead of restarting the sweep
                journal: Some(std::path::PathBuf::from(format!(
                    "results/search/{plan_key}_thr{}.jsonl",
                    (threshold * 100.0).round() as u32
                ))),
                ..SelectionConfig::default()
            };
            let outcome = select_noise_sites(spec, &images, &labels, &config)?;
            let useful = !outcome.plan.sites.is_empty();
            let last_chance = threshold == 0.0;
            if useful || last_chance {
                chosen = Some((outcome.plan, outcome.baseline, outcome.combined));
                break;
            }
        }
        chosen.expect("loop always selects on the final threshold")
    };
    store_plan(&plans_dir, &plan_key, &plan).ok();
    debug_assert!(load_plan(&plans_dir, &plan_key).is_some());

    // clean accuracy of the deployed (noise-injected) model
    let hardware = apply_noise_plan(spec, &plan, 0x0D_E910 ^ num_classes as u64)?;
    let noisy_clean = hardware.accuracy(&images, &labels, scale.batch)?;

    Ok(HybridTable {
        dataset: format!("CIFAR{num_classes}"),
        row: plan.table_row(spec),
        site_labels: spec.sites.iter().map(|s| s.label.clone()).collect(),
        vdd: plan.vdd,
        clean_accuracy: noisy_clean * 100.0,
        deviation: (baseline.clean_accuracy - noisy_clean) * 100.0,
        baseline_adv: baseline.adversarial_accuracy * 100.0,
        plan_adv: combined.adversarial_accuracy * 100.0,
        probe_eps,
        threshold_used,
    })
}

//! Fig. 5 — Adversarial Loss vs FGSM ε, baseline vs bit-error-noise models,
//! for VGG19 and ResNet18 on both datasets.

use super::{load_plan, load_trained, FIG5_EPSILONS};
use crate::{cache_dir, Scale};
use ahw_attacks::{sweep_epsilons, Attack};
use ahw_core::hardware::{apply_noise_plan, apply_weight_noise_plan, NoisePlan};
use ahw_core::selection::{select_noise_sites, SelectionConfig};
use ahw_core::zoo::ArchId;
use ahw_nn::NnError;

/// One curve pair of Fig. 5: AL(ε) for the baseline and the noise-injected
/// model of one architecture/dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Series {
    /// `"vgg19"` / `"resnet18"`.
    pub arch: String,
    /// Dataset tag.
    pub dataset: String,
    /// The ε grid.
    pub epsilons: Vec<f32>,
    /// Baseline AL per ε (percentage points).
    pub baseline_al: Vec<f32>,
    /// Noise-injected AL per ε.
    pub noisy_al: Vec<f32>,
    /// How many sites the plan noise-injects.
    pub plan_sites: usize,
    /// Which memory the noise targets (`"activations"` / `"weights"`).
    pub noise_target: String,
}

/// Regenerates one Fig. 5 curve pair. Reuses a cached Fig.-4 plan from a
/// previous `exp_table1`/`exp_table2` run when available (same plan key),
/// otherwise runs the search with the paper's settings.
///
/// # Errors
///
/// Propagates zoo/selection/attack errors.
pub fn fig5_al_sweep(
    arch: ArchId,
    num_classes: usize,
    scale: &Scale,
) -> Result<Fig5Series, NnError> {
    fig5_al_sweep_target(arch, num_classes, scale, false)
}

/// As [`fig5_al_sweep`], with the paper's activations-vs-weights ablation:
/// when `weight_noise` is true the plan corrupts parameter memories instead
/// of activation memories (§III-A reports this as the weaker defense).
///
/// # Errors
///
/// Propagates zoo/selection/attack errors.
pub fn fig5_al_sweep_target(
    arch: ArchId,
    num_classes: usize,
    scale: &Scale,
    weight_noise: bool,
) -> Result<Fig5Series, NnError> {
    let (trained, images, labels) = load_trained(arch, num_classes, scale)?;
    let spec = &trained.spec;
    let plan_key = format!("{}_{}c_w{:.4}_plan", arch.name(), num_classes, scale.width);
    let plan: NoisePlan = match load_plan(&cache_dir(), &plan_key) {
        Some(plan) => {
            eprintln!(
                "fig5: using cached plan {plan_key} ({} sites)",
                plan.sites.len()
            );
            plan
        }
        None => {
            eprintln!("fig5: no cached plan, running Fig. 4 search for {plan_key}");
            let probe_eps = super::adaptive_probe_eps(&spec.model, &images, &labels, scale.batch)?;
            let config = SelectionConfig {
                vdd: 0.68,
                attack: Attack::fgsm(probe_eps),
                improvement_threshold: 0.0,
                batch: scale.batch,
                ..SelectionConfig::default()
            };
            let outcome = select_noise_sites(spec, &images, &labels, &config)?;
            super::store_plan(&cache_dir(), &plan_key, &outcome.plan).ok();
            outcome.plan
        }
    };
    let hardware = if weight_noise {
        apply_weight_noise_plan(spec, &plan, 0xF165 ^ num_classes as u64)?
    } else {
        apply_noise_plan(spec, &plan, 0xF165 ^ num_classes as u64)?
    };

    // baseline: white-box FGSM on the software model
    let baseline = sweep_epsilons(
        &spec.model,
        &spec.model,
        &images,
        &labels,
        Attack::fgsm(0.1),
        &FIG5_EPSILONS,
        scale.batch,
    )?;
    // noisy: gradients from the clean model (paper protocol), evaluated on
    // the bit-error-injected model
    let noisy = sweep_epsilons(
        &spec.model,
        &hardware,
        &images,
        &labels,
        Attack::fgsm(0.1),
        &FIG5_EPSILONS,
        scale.batch,
    )?;
    Ok(Fig5Series {
        arch: arch.name().to_string(),
        dataset: format!("CIFAR{num_classes}"),
        epsilons: FIG5_EPSILONS.to_vec(),
        baseline_al: baseline.iter().map(|(_, o)| o.adversarial_loss()).collect(),
        noisy_al: noisy.iter().map(|(_, o)| o.adversarial_loss()).collect(),
        plan_sites: plan.sites.len(),
        noise_target: if weight_noise {
            "weights"
        } else {
            "activations"
        }
        .to_string(),
    })
}

//! Tiny text cache for selection plans, so Tables I/II and Fig. 5 share one
//! (expensive) Fig.-4 search per model.
//!
//! Format: first line `vdd <volts>`, then one `site <index> <8T> <6T>` line
//! per planned site.

use ahw_core::hardware::{NoisePlan, PlannedSite};
use ahw_sram::{HybridMemoryConfig, HybridWordConfig};
use std::path::Path;

/// Writes `plan` under `dir/<key>.plan`.
///
/// # Errors
///
/// Returns an I/O error string on failure.
pub fn store_plan(dir: &Path, key: &str, plan: &NoisePlan) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mut text = format!("vdd {}\n", plan.vdd);
    for s in &plan.sites {
        text.push_str(&format!(
            "site {} {} {}\n",
            s.site_index,
            s.config.word().eight_t(),
            s.config.word().six_t()
        ));
    }
    std::fs::write(dir.join(format!("{key}.plan")), text).map_err(|e| e.to_string())
}

/// Loads a plan stored by [`store_plan`]; `None` if absent or unparsable.
pub fn load_plan(dir: &Path, key: &str) -> Option<NoisePlan> {
    let text = std::fs::read_to_string(dir.join(format!("{key}.plan"))).ok()?;
    let mut lines = text.lines();
    let vdd: f32 = lines.next()?.strip_prefix("vdd ")?.trim().parse().ok()?;
    let mut sites = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        if parts.next()? != "site" {
            return None;
        }
        let site_index: usize = parts.next()?.parse().ok()?;
        let eight_t: u8 = parts.next()?.parse().ok()?;
        let six_t: u8 = parts.next()?.parse().ok()?;
        let word = HybridWordConfig::new(eight_t, six_t).ok()?;
        let config = HybridMemoryConfig::new(word, vdd).ok()?;
        sites.push(PlannedSite { site_index, config });
    }
    Some(NoisePlan { vdd, sites })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("ahw_plan_cache");
        let plan = NoisePlan {
            vdd: 0.68,
            sites: vec![PlannedSite {
                site_index: 3,
                config: HybridMemoryConfig::new(HybridWordConfig::new(5, 3).unwrap(), 0.68)
                    .unwrap(),
            }],
        };
        store_plan(&dir, "test_key", &plan).unwrap();
        let back = load_plan(&dir, "test_key").unwrap();
        assert_eq!(back, plan);
        assert!(load_plan(&dir, "missing").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_plan_round_trips() {
        let dir = std::env::temp_dir().join("ahw_plan_cache2");
        let plan = NoisePlan::baseline(0.7);
        store_plan(&dir, "empty", &plan).unwrap();
        assert_eq!(load_plan(&dir, "empty").unwrap(), plan);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

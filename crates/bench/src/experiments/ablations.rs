//! Ablations of the design choices called out in DESIGN.md §6:
//!
//! 1. bit-error noise in **activations vs weights** (the paper reports
//!    activations win);
//! 2. noise **visible vs invisible** to the attacker's gradient (the paper
//!    excludes it — gradient obfuscation);
//! 3. crossbar **ADC calibration** modes (none / per-layer / per-column);
//! 4. **searched hybrid plan vs homogeneous all-6T** memories everywhere.

use super::{load_plan, load_trained};
use crate::{cache_dir, Scale};
use ahw_attacks::{evaluate_attack, Attack, AttackOutcome};
use ahw_core::hardware::{
    apply_noise_plan, apply_weight_noise_plan, crossbar_variant, NoisePlan, PlannedSite,
};
use ahw_core::selection::{select_noise_sites, SelectionConfig};
use ahw_core::zoo::ArchId;
use ahw_crossbar::{Calibration, CrossbarConfig};
use ahw_nn::NnError;
use ahw_sram::{HybridMemoryConfig, HybridWordConfig};

/// One ablation measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which ablation the row belongs to.
    pub study: String,
    /// The variant measured.
    pub variant: String,
    /// Clean accuracy, percent.
    pub clean: f32,
    /// Adversarial accuracy, percent.
    pub adversarial: f32,
    /// Adversarial Loss, percentage points.
    pub al: f32,
}

impl AblationRow {
    fn new(study: &str, variant: &str, outcome: AttackOutcome) -> Self {
        AblationRow {
            study: study.to_string(),
            variant: variant.to_string(),
            clean: outcome.clean_accuracy * 100.0,
            adversarial: outcome.adversarial_accuracy * 100.0,
            al: outcome.adversarial_loss(),
        }
    }
}

/// Runs all four ablations on the VGG8 / CIFAR-10 setting.
///
/// # Errors
///
/// Propagates zoo/selection/mapping/attack errors.
pub fn run_ablations(scale: &Scale) -> Result<Vec<AblationRow>, NnError> {
    let (trained, images, labels) = load_trained(ArchId::Vgg8, 10, scale)?;
    let spec = &trained.spec;
    let attack = Attack::fgsm(0.1);
    let mut rows = Vec::new();

    // shared: a noise plan (cached from the table runs when present)
    let plan_key = format!("vgg8_10c_w{:.4}_plan", scale.width);
    let mut plan = match load_plan(&cache_dir(), &plan_key) {
        Some(p) if !p.sites.is_empty() => p,
        _ => {
            let outcome = select_noise_sites(
                spec,
                &images,
                &labels,
                &SelectionConfig {
                    improvement_threshold: 0.0,
                    batch: scale.batch,
                    ..SelectionConfig::default()
                },
            )?;
            outcome.plan
        }
    };
    if plan.sites.is_empty() {
        // the search can legitimately come up empty (no site beats the
        // baseline); the ablations still need *some* noise to contrast, so
        // fall back to a strong early-site configuration
        plan = NoisePlan {
            vdd: 0.62,
            sites: vec![PlannedSite {
                site_index: 0,
                config: HybridMemoryConfig::new(
                    HybridWordConfig::new(2, 6).map_err(|e| NnError::BadConfig(e.to_string()))?,
                    0.62,
                )
                .map_err(|e| NnError::BadConfig(e.to_string()))?,
            }],
        };
    }
    eprintln!(
        "ablation noise plan: {} site(s) at Vdd {:.2} V",
        plan.sites.len(),
        plan.vdd
    );

    // baseline
    let baseline = evaluate_attack(
        &spec.model,
        &spec.model,
        &images,
        &labels,
        attack,
        scale.batch,
    )?;
    rows.push(AblationRow::new(
        "noise-target",
        "software baseline",
        baseline,
    ));

    // ablation 1: activations vs weights
    let act_model = apply_noise_plan(spec, &plan, 0xAB1)?;
    let act = evaluate_attack(
        &spec.model,
        &act_model,
        &images,
        &labels,
        attack,
        scale.batch,
    )?;
    rows.push(AblationRow::new("noise-target", "activation memories", act));
    let w_model = apply_weight_noise_plan(spec, &plan, 0xAB1)?;
    let weights = evaluate_attack(&spec.model, &w_model, &images, &labels, attack, scale.batch)?;
    rows.push(AblationRow::new(
        "noise-target",
        "parameter memories",
        weights,
    ));

    // ablation 2: is the noise visible to the attacker's gradient?
    let invisible = evaluate_attack(
        &spec.model,
        &act_model,
        &images,
        &labels,
        attack,
        scale.batch,
    )?;
    rows.push(AblationRow::new(
        "gradient-visibility",
        "noise hidden from attacker (paper)",
        invisible,
    ));
    let visible = evaluate_attack(
        &act_model,
        &act_model,
        &images,
        &labels,
        attack,
        scale.batch,
    )?;
    rows.push(AblationRow::new(
        "gradient-visibility",
        "noise visible to attacker",
        visible,
    ));

    // ablation 3: crossbar calibration modes
    for (calibration, name) in [
        (Calibration::None, "no calibration"),
        (Calibration::PerLayer, "per-layer ADC gain"),
        (Calibration::PerColumn, "per-column ADC gain"),
    ] {
        let mut config = CrossbarConfig::paper_default(32);
        config.calibration = calibration;
        let (hardware, _) = crossbar_variant(&spec.model, &config)?;
        let outcome = evaluate_attack(
            &spec.model,
            &hardware,
            &images,
            &labels,
            attack,
            scale.batch,
        )?;
        rows.push(AblationRow::new("crossbar-calibration", name, outcome));
    }

    // ablation 4: searched hybrid plan vs all-6T everywhere at the same Vdd
    let searched = evaluate_attack(
        &spec.model,
        &act_model,
        &images,
        &labels,
        attack,
        scale.batch,
    )?;
    rows.push(AblationRow::new(
        "plan-vs-homogeneous",
        "searched hybrid plan",
        searched,
    ));
    let all6_plan = NoisePlan {
        vdd: plan.vdd,
        sites: (0..spec.sites.len())
            .map(|site_index| {
                Ok(PlannedSite {
                    site_index,
                    config: HybridMemoryConfig::new(HybridWordConfig::homogeneous_6t(), plan.vdd)
                        .map_err(|e| NnError::BadConfig(e.to_string()))?,
                })
            })
            .collect::<Result<Vec<_>, NnError>>()?,
    };
    let all6_model = apply_noise_plan(spec, &all6_plan, 0xAB2)?;
    let all6 = evaluate_attack(
        &spec.model,
        &all6_model,
        &images,
        &labels,
        attack,
        scale.batch,
    )?;
    rows.push(AblationRow::new(
        "plan-vs-homogeneous",
        "all-6T at every site",
        all6,
    ));
    Ok(rows)
}

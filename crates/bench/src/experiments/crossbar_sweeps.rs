//! Crossbar robustness experiments: Figs. 6–7, Table III, Fig. 8(a).

use super::{eps_255, load_trained};
use crate::Scale;
use ahw_attacks::{evaluate_mode, Attack, AttackMode};
use ahw_core::hardware::crossbar_variant;
use ahw_core::zoo::ArchId;
use ahw_crossbar::{CrossbarConfig, DeviceParams};
use ahw_nn::NnError;

/// One measured point of a crossbar sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarSweepRow {
    /// Crossbar edge (16/32/64).
    pub size: usize,
    /// `"FGSM"` / `"PGD"`.
    pub attack: String,
    /// `"Attack-SW"` / `"SH"` / `"HH"`.
    pub mode: String,
    /// Attack ε (pixel units).
    pub epsilon: f32,
    /// Adversarial Loss, percentage points.
    pub al: f32,
    /// Clean accuracy of the evaluated model, percent.
    pub clean: f32,
    /// `R_MIN` of the device (for the Fig. 8(a) study).
    pub r_min: f32,
}

fn attack_at(kind: &str, eps: f32, pgd_steps: usize) -> Attack {
    match kind {
        "FGSM" => Attack::fgsm(eps),
        _ => Attack::Pgd {
            epsilon: eps,
            alpha: eps / 4.0,
            steps: pgd_steps,
            random_start: true,
        },
    }
}

/// The Figs. 6/7 sweep: for each crossbar size, attack kind, mode and ε,
/// measure AL of the crossbar-mapped model (or the software baseline for
/// `Attack-SW`).
///
/// # Errors
///
/// Propagates zoo/mapping/attack errors.
pub fn crossbar_mode_sweep(
    arch: ArchId,
    num_classes: usize,
    sizes: &[usize],
    scale: &Scale,
) -> Result<Vec<CrossbarSweepRow>, NnError> {
    let (trained, images, labels) = load_trained(arch, num_classes, scale)?;
    let software = &trained.spec.model;
    let mut rows = Vec::new();
    for &size in sizes {
        let (hardware, report) = crossbar_variant(software, &CrossbarConfig::paper_default(size))?;
        eprintln!(
            "crossbar {size}x{size}: {} matrices on {} tiles",
            report.matrices, report.tiles
        );
        for attack_kind in ["FGSM", "PGD"] {
            for mode in [AttackMode::AttackSw, AttackMode::Sh, AttackMode::Hh] {
                for eps in eps_255() {
                    let attack = attack_at(attack_kind, eps, scale.pgd_steps);
                    let outcome = evaluate_mode(
                        software,
                        &hardware,
                        mode,
                        &images,
                        &labels,
                        attack,
                        scale.batch,
                    )?;
                    rows.push(CrossbarSweepRow {
                        size,
                        attack: attack_kind.to_string(),
                        mode: mode.label().to_string(),
                        epsilon: eps,
                        al: outcome.adversarial_loss(),
                        clean: outcome.clean_accuracy * 100.0,
                        r_min: 20e3,
                    });
                }
            }
        }
    }
    Ok(rows)
}

/// Table III: HH-mode PGD ALs across crossbar sizes 16/32/64.
///
/// # Errors
///
/// Propagates zoo/mapping/attack errors.
pub fn table3_size_study(scale: &Scale) -> Result<Vec<CrossbarSweepRow>, NnError> {
    let (trained, images, labels) = load_trained(ArchId::Vgg8, 10, scale)?;
    let software = &trained.spec.model;
    let mut rows = Vec::new();
    for size in [16usize, 32, 64] {
        let (hardware, _) = crossbar_variant(software, &CrossbarConfig::paper_default(size))?;
        for eps in eps_255() {
            let attack = attack_at("PGD", eps, scale.pgd_steps);
            let outcome = evaluate_mode(
                software,
                &hardware,
                AttackMode::Hh,
                &images,
                &labels,
                attack,
                scale.batch,
            )?;
            rows.push(CrossbarSweepRow {
                size,
                attack: "PGD".into(),
                mode: "HH".into(),
                epsilon: eps,
                al: outcome.adversarial_loss(),
                clean: outcome.clean_accuracy * 100.0,
                r_min: 20e3,
            });
        }
    }
    Ok(rows)
}

/// Fig. 8(a): SH and HH PGD ALs for `R_MIN` = 20 kΩ vs 10 kΩ at constant
/// ON/OFF ratio, on 32×32 crossbars.
///
/// # Errors
///
/// Propagates zoo/mapping/attack errors.
pub fn r_min_study(scale: &Scale, epsilon: f32) -> Result<Vec<CrossbarSweepRow>, NnError> {
    let (trained, images, labels) = load_trained(ArchId::Vgg8, 10, scale)?;
    let software = &trained.spec.model;
    let mut rows = Vec::new();
    for r_min in [20e3f32, 10e3] {
        let mut config = CrossbarConfig::paper_default(32);
        config.device = DeviceParams::with_r_min(r_min);
        let (hardware, _) = crossbar_variant(software, &config)?;
        for mode in [AttackMode::Sh, AttackMode::Hh] {
            let attack = attack_at("PGD", epsilon, scale.pgd_steps);
            let outcome = evaluate_mode(
                software,
                &hardware,
                mode,
                &images,
                &labels,
                attack,
                scale.batch,
            )?;
            rows.push(CrossbarSweepRow {
                size: 32,
                attack: "PGD".into(),
                mode: mode.label().to_string(),
                epsilon,
                al: outcome.adversarial_loss(),
                clean: outcome.clean_accuracy * 100.0,
                r_min,
            });
        }
    }
    Ok(rows)
}

//! Parameterized experiment implementations, one per paper artifact.
//!
//! Binaries print the returned rows; the `figures` bench runs
//! miniature versions of the same functions.

mod ablations;
mod crossbar_sweeps;
mod defense_compare;
mod fig2;
mod fig5;
mod plan_cache;
mod tables12;

pub use ablations::{run_ablations, AblationRow};
pub use crossbar_sweeps::{crossbar_mode_sweep, r_min_study, table3_size_study, CrossbarSweepRow};
pub use defense_compare::{defense_comparison, defense_comparison_on, DefenseRow};
pub use fig2::{fig2_mu_sweep, Fig2Row};
pub use fig5::{fig5_al_sweep, fig5_al_sweep_target, Fig5Series};
pub use plan_cache::{load_plan, store_plan};
pub use tables12::{hybrid_config_table, HybridTable};

use crate::{cache_dir, Scale};
use ahw_core::zoo::{train_or_load, ArchId, TrainedModel};
use ahw_nn::NnError;
use ahw_tensor::Tensor;

/// Loads (training on a cache miss) the model for `arch`/`num_classes` at
/// the given scale, and slices out the attack-evaluation split.
///
/// # Errors
///
/// Propagates zoo errors.
pub fn load_trained(
    arch: ArchId,
    num_classes: usize,
    scale: &Scale,
) -> Result<(TrainedModel, Tensor, Vec<usize>), NnError> {
    // switching experiment variants invalidates the parked attack-plan
    // arenas (they are sized for the previous model); drop them so a
    // multi-model bin doesn't retain its peak memory forever
    ahw_attacks::clear_plan_pool();
    let zoo_cfg = scale.zoo(arch, num_classes);
    let trained = train_or_load(&cache_dir(), &zoo_cfg)?;
    eprintln!(
        "model {} ({} classes): test accuracy {:.2}% ({})",
        arch.name(),
        num_classes,
        trained.test_accuracy * 100.0,
        if trained.from_cache {
            "cached"
        } else {
            "freshly trained"
        },
    );
    let n = scale.test_size.min(trained.data.test().len());
    let (images, labels) = trained.data.test().batch(0, n);
    Ok((trained, images, labels))
}

/// Picks the strongest probe ε ∈ {0.1, 0.05, 0.02} that leaves the model's
/// baseline adversarial accuracy measurably above zero on a 64-image probe —
/// a saturated probe (0 % at every configuration) cannot rank noise sites.
///
/// # Errors
///
/// Propagates attack errors.
pub fn adaptive_probe_eps(
    model: &ahw_nn::Sequential,
    images: &Tensor,
    labels: &[usize],
    batch: usize,
) -> Result<f32, NnError> {
    let mut chosen = 0.02f32;
    let n = 64.min(images.dims()[0]);
    let item = images.len() / images.dims()[0].max(1);
    let mut d = images.dims().to_vec();
    d[0] = n;
    let probe_images =
        Tensor::from_vec(images.as_slice()[..n * item].to_vec(), &d).map_err(NnError::Tensor)?;
    let probe_labels = &labels[..n];
    for eps in [0.1f32, 0.05, 0.02] {
        chosen = eps;
        let base = ahw_attacks::evaluate_attack(
            model,
            model,
            &probe_images,
            probe_labels,
            ahw_attacks::Attack::fgsm(eps),
            batch,
        )?;
        if base.adversarial_accuracy >= 0.03 {
            break;
        }
    }
    Ok(chosen)
}

/// The FGSM ε grid of Fig. 5 (pixel-unit strengths 0.05 … 0.3).
pub const FIG5_EPSILONS: [f32; 6] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

/// The ε grid of Figs. 6–7 / Table III: {2, 4, 8, 16, 32}/255.
pub fn eps_255() -> Vec<f32> {
    [2.0, 4.0, 8.0, 16.0, 32.0]
        .iter()
        .map(|e| e / 255.0)
        .collect()
}

/// Formats a `k/255` ε for table headers.
pub fn eps_label(eps: f32) -> String {
    format!("{}/255", (eps * 255.0).round() as u32)
}

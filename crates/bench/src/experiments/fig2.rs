//! Fig. 2 — average surgical-noise perturbation μ vs 8T-6T ratio, one curve
//! per supply voltage.

use ahw_sram::{mu_sweep, BitErrorModel};

/// One row of the Fig. 2 data: a ratio and μ at each voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// `#8T/#6T` label (`"7/1"` … `"0/8"`).
    pub ratio: String,
    /// μ per voltage, aligned with the sweep's voltage grid.
    pub mu: Vec<f32>,
}

/// Regenerates the Fig. 2 sweep over the given voltages (the paper plots
/// 0.60 V – 0.80 V).
pub fn fig2_mu_sweep(vdds: &[f32]) -> Vec<Fig2Row> {
    let model = BitErrorModel::srinivasan22nm();
    let (labels, rows) = mu_sweep(&model, vdds);
    labels
        .into_iter()
        .zip(rows)
        .map(|(ratio, mu)| Fig2Row { ratio, mu })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_eight_ratios_and_matches_voltages() {
        let rows = fig2_mu_sweep(&[0.6, 0.7, 0.8]);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(r.mu.len(), 3);
        }
        // paper trends: μ grows with 6T count and with voltage scaling
        assert!(rows[7].mu[0] > rows[0].mu[0]);
        assert!(rows[4].mu[0] > rows[4].mu[2]);
    }
}

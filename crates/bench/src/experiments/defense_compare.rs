//! Fig. 8(b)–(c): crossbar non-ideality robustness vs the software
//! defenses — 4-bit input discretization and QUANOS.

use super::load_trained;
use crate::Scale;
use ahw_attacks::{evaluate_attack, evaluate_mode, Attack, AttackMode};
use ahw_core::hardware::crossbar_variant;
use ahw_core::zoo::ArchId;
use ahw_crossbar::CrossbarConfig;
use ahw_defenses::{PixelDiscretization, Quanos};
use ahw_nn::NnError;

/// One bar of the Fig. 8(b)/(c) comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseRow {
    /// `"FGSM"` or `"PGD"`.
    pub attack: String,
    /// Method label.
    pub method: String,
    /// Adversarial Loss, percentage points.
    pub al: f32,
    /// Clean accuracy, percent.
    pub clean: f32,
}

/// Runs the comparison at one ε for both FGSM and PGD on the paper's
/// VGG16 / CIFAR-100 setting (32×32 crossbars, SH mode; defenses evaluated
/// white-box with BPDA gradients through their quantizers).
///
/// # Errors
///
/// Propagates zoo/defense/attack errors.
pub fn defense_comparison(scale: &Scale, epsilon: f32) -> Result<Vec<DefenseRow>, NnError> {
    defense_comparison_on(ArchId::Vgg16, 100, scale, epsilon)
}

/// As [`defense_comparison`] on an arbitrary architecture/dataset pair
/// (used by tests and the miniature benches).
///
/// # Errors
///
/// Propagates zoo/defense/attack errors.
pub fn defense_comparison_on(
    arch: ArchId,
    num_classes: usize,
    scale: &Scale,
    epsilon: f32,
) -> Result<Vec<DefenseRow>, NnError> {
    let (trained, images, labels) = load_trained(arch, num_classes, scale)?;
    let software = &trained.spec.model;

    // hardware and defended variants, built once
    let (crossbar, _) = crossbar_variant(software, &CrossbarConfig::paper_default(32))?;
    let discretized = PixelDiscretization::new(4)?.defend(software);
    let calib = scale.batch.min(images.dims()[0]);
    let mut calib_dims = images.dims().to_vec();
    calib_dims[0] = calib;
    let calib_images = ahw_tensor::Tensor::from_vec(
        images.as_slice()[..calib * (images.len() / images.dims()[0])].to_vec(),
        &calib_dims,
    )
    .map_err(ahw_nn::NnError::Tensor)?;
    let (quanos_model, sens) =
        Quanos::default().apply(software, &calib_images, &labels[..calib])?;
    eprintln!(
        "quanos bit allocation: {}",
        sens.iter()
            .map(|s| format!("{}:{}b", s.layer, s.bits))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let mut rows = Vec::new();
    for attack_kind in ["FGSM", "PGD"] {
        let attack = match attack_kind {
            "FGSM" => Attack::fgsm(epsilon),
            _ => Attack::Pgd {
                epsilon,
                alpha: epsilon / 4.0,
                steps: scale.pgd_steps,
                random_start: true,
            },
        };
        // undefended software baseline
        let base = evaluate_attack(software, software, &images, &labels, attack, scale.batch)?;
        rows.push(DefenseRow {
            attack: attack_kind.into(),
            method: "Baseline (Attack-SW)".into(),
            al: base.adversarial_loss(),
            clean: base.clean_accuracy * 100.0,
        });
        // crossbar non-idealities, SH mode (the paper's headline bar)
        let xb = evaluate_mode(
            software,
            &crossbar,
            AttackMode::Sh,
            &images,
            &labels,
            attack,
            scale.batch,
        )?;
        rows.push(DefenseRow {
            attack: attack_kind.into(),
            method: "Crossbar 32x32 (SH)".into(),
            al: xb.adversarial_loss(),
            clean: xb.clean_accuracy * 100.0,
        });
        // 4-bit pixel discretization (white-box BPDA)
        let disc = evaluate_attack(
            &discretized,
            &discretized,
            &images,
            &labels,
            attack,
            scale.batch,
        )?;
        rows.push(DefenseRow {
            attack: attack_kind.into(),
            method: "4b discretization".into(),
            al: disc.adversarial_loss(),
            clean: disc.clean_accuracy * 100.0,
        });
        // QUANOS (white-box through the quantized model)
        let q = evaluate_attack(
            &quanos_model,
            &quanos_model,
            &images,
            &labels,
            attack,
            scale.batch,
        )?;
        rows.push(DefenseRow {
            attack: attack_kind.into(),
            method: "QUANOS".into(),
            al: q.adversarial_loss(),
            clean: q.clean_accuracy * 100.0,
        });
    }
    Ok(rows)
}

//! # ahw-bench
//!
//! Regenerators for every table and figure in the paper's evaluation,
//! plus std-only benchmarks for the hardware kernels (see [`harness`]).
//!
//! Each experiment lives in [`experiments`] as a parameterized function
//! returning structured rows; the `exp_*` binaries print them paper-style
//! and the `figures` bench exercises miniature versions. Scale
//! knobs (`--quick`, `--width`, …) are shared through [`Scale`] / [`Args`].
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `exp_fig2` | Fig. 2 — μ(r, Vdd) sweep |
//! | `exp_table1` | Table I — VGG19 hybrid-memory configurations |
//! | `exp_table2` | Table II — ResNet18 hybrid-memory configurations |
//! | `exp_fig5` | Fig. 5 — AL vs ε with bit-error noise |
//! | `exp_fig6` | Fig. 6 — AL vs ε on crossbars (VGG8 / CIFAR-10) |
//! | `exp_table3` | Table III — HH-PGD ALs vs crossbar size |
//! | `exp_fig7` | Fig. 7 — AL vs ε on crossbars (VGG16 / CIFAR-100) |
//! | `exp_fig8a` | Fig. 8(a) — R_MIN study |
//! | `exp_fig8bc` | Fig. 8(b,c) — defense comparison |

pub mod calibration;
pub mod compare;
pub mod experiments;
pub mod harness;
pub mod report;
pub mod table;

use ahw_core::zoo::{ArchId, ZooConfig};
use ahw_datasets::DatasetConfig;
use ahw_nn::train::TrainConfig;
use std::path::PathBuf;

/// Experiment sizing: the same experiments run at paper scale, quick scale
/// (CI-friendly), or tiny scale (benches / unit tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Channel-width multiplier for the networks (see `ahw_nn::archs`).
    pub width: f32,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size used for attack evaluation.
    pub test_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// PGD iteration count.
    pub pgd_steps: usize,
    /// Evaluation batch size.
    pub batch: usize,
}

impl Scale {
    /// The default experiment scale, sized so the full suite finishes in
    /// about an hour on a single core (the calibration environment); pass
    /// `--full` for the larger networks if you have a many-core machine.
    pub fn standard() -> Self {
        Scale {
            width: 0.0625,
            train_size: 1200,
            test_size: 150,
            epochs: 5,
            pgd_steps: 5,
            batch: 50,
        }
    }

    /// Paper-leaning scale (`--full`): 1/8-width networks, larger splits,
    /// 7-step PGD. Minutes per figure with several cores.
    pub fn full() -> Self {
        Scale {
            width: 0.125,
            train_size: 2000,
            test_size: 250,
            epochs: 8,
            pgd_steps: 7,
            batch: 50,
        }
    }

    /// Reduced scale for smoke runs (`--quick`).
    pub fn quick() -> Self {
        Scale {
            width: 0.0625,
            train_size: 400,
            test_size: 80,
            epochs: 3,
            pgd_steps: 3,
            batch: 40,
        }
    }

    /// Miniature scale for benches and tests.
    pub fn tiny() -> Self {
        Scale {
            width: 0.0625,
            train_size: 64,
            test_size: 32,
            epochs: 1,
            pgd_steps: 2,
            batch: 16,
        }
    }

    /// The zoo configuration for an architecture/dataset at this scale.
    /// Many-class (CIFAR-100-like) runs get triple the training data and
    /// double the epochs — 100-way heads need more samples per class than
    /// the 10-way runs to leave chance level.
    pub fn zoo(&self, arch: ArchId, num_classes: usize) -> ZooConfig {
        let many = num_classes >= 100;
        let dataset = if many {
            DatasetConfig::cifar100_like()
        } else {
            DatasetConfig::cifar10_like()
        }
        .with_sizes(
            if many {
                self.train_size * 3
            } else {
                self.train_size
            },
            self.test_size.max(64),
        );
        let mut dataset = dataset;
        dataset.num_classes = num_classes;
        ZooConfig {
            arch,
            width: self.width,
            dataset,
            train: TrainConfig {
                epochs: if many { self.epochs * 2 } else { self.epochs },
                batch_size: 32,
                verbose: true,
                ..TrainConfig::default()
            },
            seed: 0xA0_0A ^ num_classes as u64,
        }
    }
}

/// Minimal `--key value` / `--flag` argument parser for the experiment
/// binaries (no CLI crate in the offline set).
#[derive(Debug, Clone, Default)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Parses a provided list (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// Whether `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }

    /// The value following `--name`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// The scale selected by `--quick` / `--tiny` (default standard), with
    /// `--width`, `--test-size`, `--epochs`, `--pgd-steps` overrides.
    pub fn scale(&self) -> Scale {
        let mut s = if self.flag("tiny") {
            Scale::tiny()
        } else if self.flag("quick") {
            Scale::quick()
        } else if self.flag("full") {
            Scale::full()
        } else {
            Scale::standard()
        };
        if let Some(w) = self.get::<f32>("width") {
            s.width = w;
        }
        if let Some(n) = self.get::<usize>("test-size") {
            s.test_size = n;
        }
        if let Some(e) = self.get::<usize>("epochs") {
            s.epochs = e;
        }
        if let Some(p) = self.get::<usize>("pgd-steps") {
            s.pgd_steps = p;
        }
        s
    }
}

/// RAII guard owning an experiment's telemetry lifecycle: on creation it
/// starts the live metrics server when `AHW_METRICS_ADDR` is set (the
/// handle is held so the bound address stays discoverable for the whole of
/// `main`); on drop it writes the run report (`AHW_REPORT`, or
/// `results/report_<bin>.md` whenever telemetry is enabled — see
/// [`report::report_path_from_env`]) and then flushes the exporters —
/// the `AHW_TRACE` trace-event file and the `AHW_METRICS` stderr summary
/// (all no-ops when telemetry is disabled). The report renders from
/// [`ahw_telemetry::peek_spans`] *before* [`ahw_telemetry::finish`]
/// drains the span buffers. Experiment binaries hold one for the whole of
/// `main` so traces survive early returns.
#[must_use = "the flush happens when the guard drops"]
#[derive(Debug)]
pub struct TelemetryFlush {
    server: Option<ahw_telemetry::MetricsServer>,
}

impl TelemetryFlush {
    /// The live metrics server's bound address, when one is running.
    pub fn server_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(ahw_telemetry::MetricsServer::addr)
    }
}

impl Drop for TelemetryFlush {
    fn drop(&mut self) {
        if let Some(path) = report::report_path_from_env() {
            let history = std::fs::read_to_string("BENCH_kernels.json").ok();
            let spans = ahw_telemetry::peek_spans();
            let snap = ahw_telemetry::snapshot();
            let roof = calibration::resolve_roofline(history.as_deref());
            let md = report::render_run_report_md(&spans, &snap, roof.as_ref(), history.as_deref());
            match report::write_report_files(&path, &md) {
                Ok(_) => eprintln!("[report] wrote {} (+ .html)", path.display()),
                Err(e) => eprintln!("[report] failed to write {}: {e}", path.display()),
            }
        }
        ahw_telemetry::finish();
    }
}

/// Creates a [`TelemetryFlush`] guard (starting the `AHW_METRICS_ADDR`
/// server if configured); bind it at the top of `main`. Setting
/// `AHW_REPORT` to a path force-enables telemetry recording — a report
/// was asked for, so there must be something to report — and an
/// `AHW_ROOF_GFLOPS`/`AHW_ROOF_GBPS` override is registered here so the
/// live `/report` endpoint can score kernels without a calibration run.
pub fn telemetry_flush() -> TelemetryFlush {
    if std::env::var("AHW_REPORT").is_ok_and(|v| !v.is_empty() && v != "0") {
        ahw_telemetry::set_enabled(true);
    }
    if ahw_telemetry::roofline().is_none() {
        if let Some(roof) = calibration::roofline_from_env() {
            ahw_telemetry::set_roofline(Some(roof));
        }
    }
    TelemetryFlush {
        server: ahw_telemetry::serve::start_from_env(),
    }
}

/// The model-checkpoint cache directory: `$AHW_CACHE` or
/// `target/ahw-models`.
pub fn cache_dir() -> PathBuf {
    std::env::var_os("AHW_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/ahw-models"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_values() {
        let a = Args::from_vec(vec![
            "--quick".into(),
            "--width".into(),
            "0.25".into(),
            "--test-size".into(),
            "64".into(),
        ]);
        assert!(a.flag("quick"));
        assert!(!a.flag("tiny"));
        let s = a.scale();
        assert_eq!(s.width, 0.25);
        assert_eq!(s.test_size, 64);
        assert_eq!(s.epochs, Scale::quick().epochs);
    }

    #[test]
    fn scale_zoo_sets_classes() {
        let z = Scale::tiny().zoo(ArchId::Vgg16, 100);
        assert_eq!(z.dataset.num_classes, 100);
        assert_eq!(z.arch, ArchId::Vgg16);
    }

    #[test]
    fn missing_value_is_none() {
        let a = Args::from_vec(vec!["--width".into()]);
        assert_eq!(a.get::<f32>("width"), None);
    }
}

//! Run-report assembly: combines the profiling report rendered by
//! `ahw_telemetry::profile` (span tree with self times, worker
//! utilization, roofline scoring) with the `BENCH_kernels.json` trend into
//! one self-contained Markdown/HTML document.
//!
//! Three ways to get one:
//!
//! 1. **Live, automatic** — every `exp_*` binary holds a
//!    [`crate::TelemetryFlush`] guard; when telemetry is enabled the guard
//!    writes `results/report_<bin>.md` (+ `.html`) at exit, before the
//!    exporters drain the span buffers. `AHW_REPORT=<path>` overrides the
//!    destination (and force-enables telemetry); `AHW_REPORT=0` disables
//!    the write.
//! 2. **Live, scraped** — `ahw_report --scrape <host:port>` fetches
//!    `/report.md` from a running process's metrics server.
//! 3. **Offline** — `ahw_report --trace trace.json --snapshot
//!    snapshot.json` re-renders the report from the files a previous run
//!    exported (`AHW_TRACE`, `/snapshot.json`), re-parsing them with the
//!    hand-rolled readers in this module (the workspace is std-only).

use crate::compare::{compare, parse_rows, Verdict, DEFAULT_THRESHOLD};
use ahw_telemetry::{HistogramSnapshot, MetricsSnapshot, Roofline, SpanEvent};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Interns a span name to the `&'static str` the telemetry types require:
/// trace files are re-parsed long after the original statics are gone, so
/// each distinct name is leaked exactly once per process.
fn intern_name(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = INTERNED
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

/// Extracts the JSON string field `"field":"..."` from `obj`.
fn string_field(obj: &str, field: &str) -> Option<String> {
    let pat = format!("\"{field}\":\"");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extracts the JSON number field `"field":123.45` from `obj`.
fn num_field(obj: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\":");
    let start = obj.find(&pat)? + pat.len();
    let num: String = obj[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

/// Splits the body of a JSON array of flat objects (`{...},{...}`) into
/// per-object slices. Only tracks brace depth inside/outside strings —
/// enough for the machine-written exports this module re-reads.
fn split_objects(body: &str) -> Vec<&str> {
    let mut objs = Vec::new();
    let (mut depth, mut start, mut in_str, mut escaped) = (0usize, 0usize, false, false);
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '{' if !in_str => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' if !in_str => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    objs.push(&body[start..=i]);
                }
            }
            _ => {}
        }
    }
    objs
}

/// Re-parses a trace-event JSON export (`ahw_telemetry::trace_json`) back
/// into span events. Metadata (`"ph":"M"`) records are skipped; `ts`/`dur`
/// are on the export's µs timebase with 3 decimals, so the ns round-trip
/// is exact.
pub fn parse_trace_json(text: &str) -> Vec<SpanEvent> {
    let body = match text.find('[') {
        Some(i) => &text[i + 1..text.rfind(']').unwrap_or(text.len())],
        None => return Vec::new(),
    };
    let mut spans: Vec<SpanEvent> = split_objects(body)
        .into_iter()
        .filter(|obj| string_field(obj, "ph").as_deref() == Some("X"))
        .filter_map(|obj| {
            Some(SpanEvent {
                name: intern_name(&string_field(obj, "name")?),
                label: string_field(obj, "label"),
                tid: num_field(obj, "tid")? as u32,
                start_ns: (num_field(obj, "ts")? * 1000.0).round() as u64,
                dur_ns: (num_field(obj, "dur")? * 1000.0).round() as u64,
                depth: num_field(obj, "depth").map_or(1, |d| d as u16),
            })
        })
        .collect();
    spans.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.dur_ns.cmp(&a.dur_ns))
            .then(a.tid.cmp(&b.tid))
            .then(a.name.cmp(b.name))
    });
    spans
}

/// Extracts the `"key":{...}` object bodies of a `{"name":{...},...}` map.
fn object_entries(body: &str) -> Vec<(String, &str)> {
    split_objects(body)
        .into_iter()
        .filter_map(|obj| {
            // The key is the last string immediately before this object:
            // `..."key":{...}`.
            let head = &body[..body.find(obj)? + 1];
            let colon = head.rfind(":{")?;
            let quoted = &head[..colon];
            let close = quoted.rfind('"')?;
            let open = quoted[..close].rfind('"')?;
            Some((quoted[open + 1..close].to_string(), obj))
        })
        .collect()
}

/// Slices the body of `"section":{...}` out of a JSON object.
fn section<'a>(text: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":{{");
    let start = text.find(&pat)? + pat.len() - 1;
    let rest = &text[start..];
    let (mut depth, mut in_str, mut escaped) = (0usize, false, false);
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '{' if !in_str => depth += 1,
            '}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Re-parses a metrics snapshot export (`ahw_telemetry::snapshot_json`).
/// Gauges are ignored — no report section reads them — and malformed
/// entries are skipped rather than failing the whole report.
pub fn parse_snapshot_json(text: &str) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    if let Some(counters) = section(text, "counters") {
        let inner = &counters[1..counters.len().saturating_sub(1)];
        for entry in inner.split(',') {
            let mut parts = entry.splitn(2, ':');
            let (Some(key), Some(value)) = (parts.next(), parts.next()) else {
                continue;
            };
            let key = key.trim().trim_matches('"');
            if let Ok(v) = value.trim().parse::<u64>() {
                snap.counters.insert(key.to_string(), v);
            }
        }
    }
    if let Some(hists) = section(text, "histograms") {
        for (name, obj) in object_entries(&hists[1..hists.len().saturating_sub(1)]) {
            let (Some(count), Some(sum)) = (num_field(obj, "count"), num_field(obj, "sum")) else {
                continue;
            };
            let mut h = HistogramSnapshot {
                count: count as u64,
                sum: sum as u64,
                buckets: [0; ahw_telemetry::metrics::HISTOGRAM_BUCKETS],
            };
            if let (Some(open), Some(close)) = (obj.find('['), obj.rfind(']')) {
                for (i, b) in obj[open + 1..close].split(',').enumerate() {
                    if i >= h.buckets.len() {
                        break;
                    }
                    h.buckets[i] = b.trim().parse().unwrap_or(0);
                }
            }
            snap.histograms.insert(name, h);
        }
    }
    snap
}

/// Renders the bench-history trend section: per key, the newest row
/// against the best of its baseline window (`crate::compare`), plus the
/// newest machine-roof calibration when one is recorded.
pub fn render_bench_trend_md(history: &str) -> String {
    let mut out = String::from("## Bench trend\n\n");
    if let Some(cal) = crate::calibration::parse_latest_calibration(history) {
        let _ = writeln!(
            out,
            "calibrated roof: {:.2} GFLOP/s peak GEMM · {:.2} GB/s stream (threads={})\n",
            cal.peak_gflops, cal.stream_gbps, cal.threads
        );
    }
    let comparisons = compare(&parse_rows(history), DEFAULT_THRESHOLD);
    if comparisons.is_empty() {
        out.push_str("no key has two history rows to compare\n");
        return out;
    }
    out.push_str("| key | baseline_median_ns | latest_median_ns | Δ median | Δ best | verdict |\n");
    out.push_str("|---|---:|---:|---:|---:|---|\n");
    for c in &comparisons {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:+.1}% | {:+.1}% | {} |",
            c.key,
            c.prev_median_ns,
            c.latest_median_ns,
            c.median_delta * 100.0,
            c.min_delta * 100.0,
            c.verdict
        );
    }
    let regressed = comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Regressed)
        .count();
    let _ = writeln!(
        out,
        "\n{} keys compared, {regressed} regressed (threshold {:.0}%)",
        comparisons.len(),
        DEFAULT_THRESHOLD * 100.0
    );
    out
}

/// Assembles the full run report: the profiling sections from
/// `ahw_telemetry::profile` plus, when a bench history is provided, the
/// bench-trend section.
pub fn render_run_report_md(
    spans: &[SpanEvent],
    snap: &MetricsSnapshot,
    roof: Option<&Roofline>,
    bench_history: Option<&str>,
) -> String {
    let mut out = ahw_telemetry::render_report_md(spans, snap, roof);
    if let Some(history) = bench_history {
        out.push('\n');
        out.push_str(&render_bench_trend_md(history));
    }
    out
}

/// Writes `md` to `path` and a rendered HTML sibling (`.html`); returns
/// the HTML path.
pub fn write_report_files(path: &std::path::Path, md: &str) -> std::io::Result<std::path::PathBuf> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, md)?;
    let html_path = path.with_extension("html");
    std::fs::write(
        &html_path,
        ahw_telemetry::profile::md_to_html(md, "ahw run report"),
    )?;
    Ok(html_path)
}

/// The report destination for this process, if reports are enabled:
/// `AHW_REPORT=<path>` names it explicitly (`0`/empty disables), otherwise
/// telemetry being enabled selects `results/report_<bin>.md`.
pub fn report_path_from_env() -> Option<std::path::PathBuf> {
    match std::env::var("AHW_REPORT") {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) => Some(std::path::PathBuf::from(v)),
        Err(_) => {
            if !ahw_telemetry::enabled() {
                return None;
            }
            let bin = std::env::current_exe()
                .ok()
                .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
                .unwrap_or_else(|| "run".to_string());
            Some(std::path::PathBuf::from(format!("results/report_{bin}.md")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_round_trips_through_the_parser() {
        let spans = vec![
            SpanEvent {
                name: "tensor.ops.matmul",
                label: None,
                tid: 0,
                start_ns: 1_000,
                dur_ns: 2_500,
                depth: 1,
            },
            SpanEvent {
                name: "attacks.sweep.epsilon",
                label: Some("eps=0.1".to_string()),
                tid: 1,
                start_ns: 4_000,
                dur_ns: 900,
                depth: 2,
            },
        ];
        let parsed = parse_trace_json(&ahw_telemetry::trace_json(&spans));
        assert_eq!(parsed, spans, "µs-timebase export must round-trip to ns");
    }

    #[test]
    fn snapshot_json_round_trips_counters_and_histograms() {
        let mut snap = MetricsSnapshot::default();
        snap.counters
            .insert("tensor.ops.gemm_flops".to_string(), 123_456);
        snap.counters.insert("tensor.pool.jobs".to_string(), 7);
        let mut h = HistogramSnapshot {
            count: 3,
            sum: 999,
            buckets: [0; ahw_telemetry::metrics::HISTOGRAM_BUCKETS],
        };
        h.buckets[2] = 3;
        snap.histograms
            .insert("tensor.ops.matmul.dur_ns".to_string(), h);
        let json = ahw_telemetry::export::metrics_snapshot_json(&snap);
        let parsed = parse_snapshot_json(&json);
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.histograms, snap.histograms);
    }

    #[test]
    fn bench_trend_renders_verdicts_and_calibration() {
        let history = concat!(
            "{\"name\":\"calibration/roofline\",\"threads\":2,\"gemm_dim\":256,\"peak_gflops\":8.5,\"stream_gbps\":3.0}\n",
            "{\"rev\":\"aaaaaaa\",\"threads\":1,\"name\":\"matmul/256\",\"median_ns\":1000000,\"min_ns\":950000,\"max_ns\":1100000}\n",
            "{\"rev\":\"bbbbbbb\",\"threads\":1,\"name\":\"matmul/256\",\"median_ns\":1020000,\"min_ns\":960000,\"max_ns\":1080000}\n",
        );
        let md = render_bench_trend_md(history);
        assert!(md.contains("## Bench trend"));
        assert!(md.contains("8.50 GFLOP/s"));
        assert!(md.contains("| matmul/256 thr=1 | 1000000 | 1020000 |"));
        assert!(md.contains("1 keys compared, 0 regressed"));
        assert!(render_bench_trend_md("").contains("no key has two history rows"));
    }

    #[test]
    fn run_report_appends_the_trend_section() {
        let snap = MetricsSnapshot::default();
        let md = render_run_report_md(&[], &snap, None, Some(""));
        assert!(md.starts_with("# ahw run report"));
        assert!(md.contains("## Bench trend"));
        let without = render_run_report_md(&[], &snap, None, None);
        assert!(!without.contains("## Bench trend"));
    }

    #[test]
    fn report_files_land_as_md_and_html() {
        let dir = std::env::temp_dir().join(format!("ahw_report_test_{}", std::process::id()));
        let path = dir.join("report.md");
        let html = write_report_files(&path, "# ahw run report\n\n## Span tree\n").unwrap();
        let md_back = std::fs::read_to_string(&path).unwrap();
        let html_back = std::fs::read_to_string(&html).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(md_back.starts_with("# ahw run report"));
        assert!(html_back.starts_with("<!DOCTYPE html>"));
        assert!(html_back.contains("<h2>Span tree</h2>"));
    }

    #[test]
    fn interning_is_stable_per_name() {
        let a = intern_name("test.report.interned");
        let b = intern_name("test.report.interned");
        assert!(std::ptr::eq(a, b), "same name must intern to one leak");
    }
}

//! One-shot machine-roof calibration for the roofline report: measures
//! peak GEMM throughput (GFLOP/s) and peak streaming bandwidth (GB/s) at
//! the configured thread count, using the same kernels the experiments
//! run on.
//!
//! The measurement deliberately runs with telemetry recording **suspended**
//! — calibration GEMMs must not pollute the FLOP/byte counters or the span
//! buffers of the run being profiled — and registers the measured roof via
//! [`ahw_telemetry::set_roofline`] so the `/report` endpoint and the
//! end-of-run report can score kernels immediately.
//!
//! `scripts/bench.sh` records the roof as a JSON line in
//! `BENCH_kernels.json` (`"name":"calibration/roofline"`), versioning the
//! machine roof alongside the kernel timings; the bench-history parser
//! skips the row (it has no `median_ns`), and [`parse_latest_calibration`]
//! reads it back for offline report generation.
//!
//! Environment overrides `AHW_ROOF_GFLOPS` / `AHW_ROOF_GBPS` short-circuit
//! the measurement entirely ([`roofline_from_env`]) — useful on shared
//! hosts where a fresh measurement would be noisy.

use ahw_telemetry::Roofline;
use ahw_tensor::{ops, pool, rng};
use std::time::Instant;

/// Square GEMM dimension used for the compute-roof measurement: large
/// enough to reach the kernel's steady state, small enough that the whole
/// calibration stays under a second.
pub const GEMM_DIM: usize = 256;

/// Elements in the stream-roof buffers (f32): 4 MiB per buffer, far beyond
/// L2 on any relevant host, so the measurement sees memory, not cache.
pub const STREAM_ELEMS: usize = 1 << 20;

/// Timed repetitions per roof; the best repetition is the roof (transient
/// interference only ever slows a run down).
const REPS: usize = 3;

/// One measured (or overridden) machine roof.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Best measured GEMM throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Best measured streaming bandwidth, GB/s.
    pub stream_gbps: f64,
    /// Worker count the measurement ran at.
    pub threads: usize,
}

impl Calibration {
    pub fn roofline(&self) -> Roofline {
        Roofline {
            peak_gflops: self.peak_gflops,
            stream_gbps: self.stream_gbps,
        }
    }

    /// The JSON history line `scripts/bench.sh` appends to
    /// `BENCH_kernels.json`. Deliberately has no `median_ns` field so the
    /// bench-regression parser skips it.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"calibration/roofline\",\"threads\":{},\"gemm_dim\":{GEMM_DIM},\"peak_gflops\":{:.3},\"stream_gbps\":{:.3}}}",
            self.threads, self.peak_gflops, self.stream_gbps
        )
    }
}

/// Measures the machine roof at the current `AHW_THREADS` setting and
/// registers it via [`ahw_telemetry::set_roofline`]. Telemetry recording
/// is suspended for the duration so the calibration work never shows up in
/// the profiled run's counters or spans.
pub fn calibrate() -> Calibration {
    let was_enabled = ahw_telemetry::enabled();
    ahw_telemetry::set_enabled(false);
    let cal = Calibration {
        peak_gflops: measure_gemm_gflops(),
        stream_gbps: measure_stream_gbps(),
        threads: pool::num_threads(),
    };
    ahw_telemetry::set_enabled(was_enabled);
    ahw_telemetry::set_roofline(Some(cal.roofline()));
    cal
}

fn measure_gemm_gflops() -> f64 {
    let mut r = rng::seeded(0xCA1B);
    let a = rng::uniform(&[GEMM_DIM, GEMM_DIM], -1.0, 1.0, &mut r);
    let b = rng::uniform(&[GEMM_DIM, GEMM_DIM], -1.0, 1.0, &mut r);
    // One untimed pass warms the pool (worker spawn is paid here, not in
    // the measurement).
    let _ = ops::matmul(&a, &b).expect("calibration matmul");
    let flops = 2.0 * (GEMM_DIM as f64).powi(3);
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let t = Instant::now();
        let c = ops::matmul(&a, &b).expect("calibration matmul");
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(&c);
        if secs > 0.0 {
            best = best.max(flops / secs / 1e9);
        }
    }
    best
}

fn measure_stream_gbps() -> f64 {
    let src: Vec<f32> = (0..STREAM_ELEMS).map(|i| (i % 17) as f32).collect();
    let mut dst = vec![0.0f32; STREAM_ELEMS];
    // Read + write per element.
    let bytes = (2 * STREAM_ELEMS * std::mem::size_of::<f32>()) as f64;
    let mut best = 0.0f64;
    for rep in 0..=REPS {
        let t = Instant::now();
        let scale = 1.0 + rep as f32 * 1e-6;
        pool::par_row_chunks_mut(&mut dst, 4096, 1, |first, rows| {
            let base = first * 4096;
            for (j, v) in rows.iter_mut().enumerate() {
                *v = src[base + j] * scale;
            }
        });
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(&dst);
        // rep 0 is the warm-up (page faults on `dst`).
        if rep > 0 && secs > 0.0 {
            best = best.max(bytes / secs / 1e9);
        }
    }
    best
}

/// The roof from `AHW_ROOF_GFLOPS` / `AHW_ROOF_GBPS`, when both are set to
/// positive numbers.
pub fn roofline_from_env() -> Option<Roofline> {
    let get = |key: &str| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| *v > 0.0)
    };
    Some(Roofline {
        peak_gflops: get("AHW_ROOF_GFLOPS")?,
        stream_gbps: get("AHW_ROOF_GBPS")?,
    })
}

/// Extracts a JSON number field `"field":123.45` from a flat object line.
fn f64_field(line: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\":");
    let start = line.find(&pat)? + pat.len();
    let num: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E')
        .collect();
    num.parse().ok()
}

/// The most recent `calibration/roofline` row in a `BENCH_kernels.json`
/// history, if any — the offline fallback roof for `ahw_report` when no
/// live calibration ran in this process.
pub fn parse_latest_calibration(history: &str) -> Option<Calibration> {
    history
        .lines()
        .rfind(|l| l.contains("\"name\":\"calibration/roofline\""))
        .and_then(|line| {
            Some(Calibration {
                peak_gflops: f64_field(line, "peak_gflops")?,
                stream_gbps: f64_field(line, "stream_gbps")?,
                threads: f64_field(line, "threads")? as usize,
            })
        })
}

/// Resolution order for the roof a report should use: an explicitly
/// registered roof (a live calibration in this process), then the
/// environment override, then the newest `calibration/roofline` row in
/// `bench_history` (when provided).
pub fn resolve_roofline(bench_history: Option<&str>) -> Option<Roofline> {
    ahw_telemetry::roofline()
        .or_else(roofline_from_env)
        .or_else(|| Some(parse_latest_calibration(bench_history?)?.roofline()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the process-global roofline slot, the
    /// telemetry enable flag, or the pool thread override.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn calibration_json_round_trips_and_is_skipped_by_the_bench_parser() {
        let cal = Calibration {
            peak_gflops: 12.345,
            stream_gbps: 6.789,
            threads: 4,
        };
        let line = cal.to_json();
        assert!(line.contains("\"name\":\"calibration/roofline\""));
        assert!(!line.contains("median_ns"));
        let parsed = parse_latest_calibration(&line).expect("parse back");
        assert!((parsed.peak_gflops - 12.345).abs() < 1e-9);
        assert!((parsed.stream_gbps - 6.789).abs() < 1e-9);
        assert_eq!(parsed.threads, 4);
        assert!(
            crate::compare::parse_rows(&line).is_empty(),
            "the regression watchdog must skip calibration rows"
        );
    }

    #[test]
    fn latest_calibration_row_wins() {
        let history = concat!(
            "{\"name\":\"calibration/roofline\",\"threads\":1,\"gemm_dim\":256,\"peak_gflops\":1.0,\"stream_gbps\":1.0}\n",
            "{\"rev\":\"x\",\"threads\":1,\"name\":\"matmul/256\",\"median_ns\":1,\"min_ns\":1,\"max_ns\":1}\n",
            "{\"name\":\"calibration/roofline\",\"threads\":2,\"gemm_dim\":256,\"peak_gflops\":3.5,\"stream_gbps\":2.25}\n",
        );
        let cal = parse_latest_calibration(history).expect("newest row");
        assert_eq!(cal.threads, 2);
        assert!((cal.peak_gflops - 3.5).abs() < 1e-12);
        assert!(parse_latest_calibration("no calibration here").is_none());
    }

    #[test]
    fn measured_calibration_is_positive_and_registers_the_roof() {
        let _g = lock();
        pool::set_thread_override(Some(2));
        ahw_telemetry::set_roofline(None);
        let was_enabled = ahw_telemetry::enabled();
        let cal = calibrate();
        pool::set_thread_override(None);
        assert!(cal.peak_gflops > 0.0, "GEMM roof must be positive");
        assert!(cal.stream_gbps > 0.0, "stream roof must be positive");
        assert_eq!(cal.threads, 2);
        assert_eq!(
            ahw_telemetry::enabled(),
            was_enabled,
            "calibration must restore the telemetry enable flag"
        );
        let roof = ahw_telemetry::roofline().expect("roof registered");
        assert_eq!(roof.peak_gflops, cal.peak_gflops);
        ahw_telemetry::set_roofline(None);
    }

    #[test]
    fn resolution_order_prefers_registered_then_history() {
        let _g = lock();
        ahw_telemetry::set_roofline(None);
        let history =
            "{\"name\":\"calibration/roofline\",\"threads\":1,\"gemm_dim\":256,\"peak_gflops\":9.0,\"stream_gbps\":4.0}";
        let from_history = resolve_roofline(Some(history)).expect("history roof");
        assert_eq!(from_history.peak_gflops, 9.0);
        ahw_telemetry::set_roofline(Some(Roofline {
            peak_gflops: 2.0,
            stream_gbps: 1.0,
        }));
        let registered = resolve_roofline(Some(history)).expect("registered roof");
        assert_eq!(registered.peak_gflops, 2.0, "registered roof wins");
        ahw_telemetry::set_roofline(None);
    }
}

//! Benchmarks for the hardware-simulation kernels: the hot paths behind
//! every experiment (GEMM, im2col convolution, mesh solvers, bit-error
//! injection, attack crafting). Runs on the std-only harness
//! ([`ahw_bench::harness`]); see that module for filters and env knobs.

use ahw_attacks::{evaluate_attack_sharded, Attack};
use ahw_bench::harness::{black_box, Harness};
use ahw_core::selection::{select_noise_sites, SelectionConfig};
use ahw_crossbar::{
    extract_effective_conductance, CrossbarConfig, NonIdealities, SolverKind, TiledMatrix,
};
use ahw_nn::layers::Conv2d;
use ahw_nn::{Layer, Mode, Sequential};
use ahw_sram::{BitErrorInjector, BitErrorModel, HybridMemoryConfig, HybridWordConfig};
use ahw_tensor::{ops, rng};

fn bench_matmul(h: &mut Harness) {
    for n in [32usize, 128, 256] {
        let a = rng::uniform(&[n, n], -1.0, 1.0, &mut rng::seeded(1));
        let b = rng::uniform(&[n, n], -1.0, 1.0, &mut rng::seeded(2));
        h.bench(&format!("matmul/{n}"), || {
            black_box(ops::matmul(black_box(&a), black_box(&b)).unwrap());
        });
    }
}

fn bench_conv_forward(h: &mut Harness) {
    let mut rng_ = rng::seeded(3);
    let conv = Conv2d::new(16, 32, 3, 1, 1, &mut rng_).unwrap();
    let x = rng::normal(&[4, 16, 32, 32], 0.0, 1.0, &mut rng_);
    h.bench("conv2d/forward_4x16x32x32", || {
        black_box(conv.forward_infer(black_box(&x)).unwrap());
    });
}

fn bench_mesh_solvers(h: &mut Harness) {
    let ni = NonIdealities::paper_default();
    for k in [16usize, 32, 64] {
        let g = rng::uniform(&[k * k], 5e-6, 5e-5, &mut rng::seeded(4)).into_vec();
        h.bench(&format!("mesh_solver/relaxation/{k}"), || {
            black_box(
                extract_effective_conductance(
                    black_box(&g),
                    k,
                    k,
                    &ni,
                    SolverKind::Relaxation { sweeps: 15 },
                )
                .unwrap(),
            );
        });
        if k <= 16 {
            h.bench(&format!("mesh_solver/exact/{k}"), || {
                black_box(
                    extract_effective_conductance(black_box(&g), k, k, &ni, SolverKind::Exact)
                        .unwrap(),
                );
            });
        }
    }
}

fn bench_crossbar_programming(h: &mut Harness) {
    let w = rng::uniform(&[64, 256], -1.0, 1.0, &mut rng::seeded(5));
    let cfg = CrossbarConfig::paper_default(32);
    h.bench("crossbar/program_64x256_on_32x32_tiles", || {
        black_box(
            TiledMatrix::program(black_box(&w), &cfg, &mut rng::seeded(6))
                .unwrap()
                .effective_weight(),
        );
    });
}

fn bench_bit_error_injection(h: &mut Harness) {
    let cfg = HybridMemoryConfig::new(HybridWordConfig::new(4, 4).unwrap(), 0.62).unwrap();
    let inj = BitErrorInjector::new(cfg, &BitErrorModel::srinivasan22nm(), 7);
    let x = rng::uniform(&[16 * 32 * 32], 0.0, 1.0, &mut rng::seeded(8));
    h.bench("sram/bit_error_injection_16k", || {
        black_box(inj.corrupt(black_box(&x)));
    });
    // Activation-sized workload: one hooked conv output in the Fig. 4-8
    // pipelines (batch 8, 32 channels, 32x32 feature map). This is the
    // store->flip->load round trip the sparse-event injector is judged on.
    let act = rng::uniform(&[8, 32, 32, 32], 0.0, 1.0, &mut rng::seeded(11));
    h.bench("sram/inject_8x32x32x32", || {
        black_box(inj.corrupt(black_box(&act)));
    });
}

fn bench_fgsm(h: &mut Harness) {
    let mut rng_ = rng::seeded(9);
    let mut model = Sequential::new();
    model.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng_).unwrap());
    model.push(ahw_nn::layers::Flatten::new());
    model.push(ahw_nn::layers::Linear::new(8 * 16 * 16, 10, &mut rng_).unwrap());
    let x = rng::uniform(&[8, 3, 16, 16], 0.0, 1.0, &mut rng_);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    h.bench("attacks/fgsm_batch8", || {
        black_box(ahw_attacks::fgsm(black_box(&mut model), black_box(&x), &labels, 0.05).unwrap());
    });
    let _ = model.forward(&x, Mode::Eval);
}

fn bench_pgd_eval(h: &mut Harness) {
    // The attack loop the paper actually measures: a full PGD evaluation
    // (k gradient steps per batch, sharded across workers) rather than a
    // single raw kernel. This is the workload the execution-plan/workspace
    // reuse path is judged on.
    let mut rng_ = rng::seeded(10);
    let mut model = Sequential::new();
    model.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng_).unwrap());
    model.push(ahw_nn::layers::ReLU::new());
    model.push(ahw_nn::layers::Flatten::new());
    model.push(ahw_nn::layers::Linear::new(8 * 16 * 16, 10, &mut rng_).unwrap());
    let x = rng::uniform(&[24, 3, 16, 16], 0.0, 1.0, &mut rng_);
    let labels: Vec<usize> = (0..24).map(|i| i % 10).collect();
    let attack = Attack::pgd(0.05);
    h.bench("attacks/pgd_eval_24x3x16x16", || {
        black_box(
            evaluate_attack_sharded(
                black_box(&model),
                black_box(&model),
                black_box(&x),
                &labels,
                attack,
                8,
                2,
            )
            .unwrap(),
        );
    });
}

fn bench_fig4_probe(h: &mut Harness) {
    // The Fig.-4 selection search end to end on a miniature spec: the
    // per-site 6T sweep plus the combination search, dozens of FGSM
    // evaluations per run. This is the workload the parallel/resumable
    // search pipeline is judged on (Tables I/II at experiment scale).
    let spec = ahw_nn::archs::vgg8(4, 0.0625, &mut rng::seeded(21)).unwrap();
    let x = rng::uniform(&[24, 3, 32, 32], 0.0, 1.0, &mut rng::seeded(22));
    let labels: Vec<usize> = (0..24).map(|i| i % 4).collect();
    let config = SelectionConfig {
        batch: 12,
        search_subset: 16,
        ..SelectionConfig::default()
    };
    h.bench("selection/fig4_probe", || {
        black_box(select_noise_sites(black_box(&spec), black_box(&x), &labels, &config).unwrap());
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_matmul(&mut h);
    bench_conv_forward(&mut h);
    bench_mesh_solvers(&mut h);
    bench_crossbar_programming(&mut h);
    bench_bit_error_injection(&mut h);
    bench_fgsm(&mut h);
    bench_pgd_eval(&mut h);
    bench_fig4_probe(&mut h);
    h.finish();
}

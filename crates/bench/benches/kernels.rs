//! Criterion benchmarks for the hardware-simulation kernels: the hot paths
//! behind every experiment (GEMM, im2col convolution, mesh solvers, bit-error
//! injection, attack crafting).

use ahw_crossbar::{
    extract_effective_conductance, CrossbarConfig, NonIdealities, SolverKind, TiledMatrix,
};
use ahw_nn::layers::Conv2d;
use ahw_nn::{Layer, Mode, Sequential};
use ahw_sram::{BitErrorInjector, BitErrorModel, HybridMemoryConfig, HybridWordConfig};
use ahw_tensor::{ops, rng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Bounds every group so a single-core full-workspace `cargo bench` stays
/// in minutes: 10 samples, short measurement windows.
fn short(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    short(&mut group);
    for n in [32usize, 128] {
        let a = rng::uniform(&[n, n], -1.0, 1.0, &mut rng::seeded(1));
        let b = rng::uniform(&[n, n], -1.0, 1.0, &mut rng::seeded(2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng_ = rng::seeded(3);
    let conv = Conv2d::new(16, 32, 3, 1, 1, &mut rng_).unwrap();
    let x = rng::normal(&[4, 16, 32, 32], 0.0, 1.0, &mut rng_);
    let mut group = c.benchmark_group("conv2d");
    short(&mut group);
    group.bench_function("forward_4x16x32x32", |b| {
        b.iter(|| conv.forward_infer(black_box(&x)).unwrap());
    });
    group.finish();
}

fn bench_mesh_solvers(c: &mut Criterion) {
    let ni = NonIdealities::paper_default();
    let mut group = c.benchmark_group("mesh_solver");
    short(&mut group);
    for k in [16usize, 32, 64] {
        let g = rng::uniform(&[k * k], 5e-6, 5e-5, &mut rng::seeded(4)).into_vec();
        group.bench_with_input(BenchmarkId::new("relaxation", k), &k, |bench, &k| {
            bench.iter(|| {
                extract_effective_conductance(
                    black_box(&g),
                    k,
                    k,
                    &ni,
                    SolverKind::Relaxation { sweeps: 15 },
                )
                .unwrap()
            });
        });
        if k <= 16 {
            group.bench_with_input(BenchmarkId::new("exact", k), &k, |bench, &k| {
                bench.iter(|| {
                    extract_effective_conductance(black_box(&g), k, k, &ni, SolverKind::Exact)
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

fn bench_crossbar_programming(c: &mut Criterion) {
    let w = rng::uniform(&[64, 256], -1.0, 1.0, &mut rng::seeded(5));
    let cfg = CrossbarConfig::paper_default(32);
    let mut group = c.benchmark_group("crossbar");
    short(&mut group);
    group.bench_function("program_64x256_on_32x32_tiles", |b| {
        b.iter(|| {
            TiledMatrix::program(black_box(&w), &cfg, &mut rng::seeded(6))
                .unwrap()
                .effective_weight()
        });
    });
    group.finish();
}

fn bench_bit_error_injection(c: &mut Criterion) {
    let cfg = HybridMemoryConfig::new(HybridWordConfig::new(4, 4).unwrap(), 0.62).unwrap();
    let inj = BitErrorInjector::new(cfg, &BitErrorModel::srinivasan22nm(), 7);
    let x = rng::uniform(&[16 * 32 * 32], 0.0, 1.0, &mut rng::seeded(8));
    let mut group = c.benchmark_group("sram");
    short(&mut group);
    group.bench_function("bit_error_injection_16k", |b| {
        b.iter(|| inj.corrupt(black_box(&x)));
    });
    group.finish();
}

fn bench_fgsm(c: &mut Criterion) {
    let mut rng_ = rng::seeded(9);
    let mut model = Sequential::new();
    model.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng_).unwrap());
    model.push(ahw_nn::layers::Flatten::new());
    model.push(ahw_nn::layers::Linear::new(8 * 16 * 16, 10, &mut rng_).unwrap());
    let x = rng::uniform(&[8, 3, 16, 16], 0.0, 1.0, &mut rng_);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let mut group = c.benchmark_group("attacks");
    short(&mut group);
    group.bench_function("fgsm_batch8", |b| {
        b.iter(|| ahw_attacks::fgsm(black_box(&mut model), black_box(&x), &labels, 0.05).unwrap());
    });
    group.finish();
    let _ = model.forward(&x, Mode::Eval);
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv_forward,
    bench_mesh_solvers,
    bench_crossbar_programming,
    bench_bit_error_injection,
    bench_fgsm
);
criterion_main!(benches);

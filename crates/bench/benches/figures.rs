//! One Criterion bench per paper table/figure, exercising the same code the
//! `exp_*` binaries run, at [`Scale::tiny`] and with trained checkpoints and
//! selection plans pre-cached so each iteration measures the *experiment*
//! cost, not training. The binaries produce the paper-scale numbers; these
//! benches track regeneration cost and double as end-to-end smoke tests.

use ahw_bench::experiments::{
    crossbar_mode_sweep, defense_comparison_on, fig2_mu_sweep, fig5_al_sweep, r_min_study,
    store_plan, table3_size_study,
};
use ahw_bench::{cache_dir, Scale};
use ahw_core::hardware::{NoisePlan, PlannedSite};
use ahw_core::selection::{select_noise_sites, SelectionConfig};
use ahw_core::zoo::ArchId;
use ahw_sram::{HybridMemoryConfig, HybridWordConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn tiny() -> Scale {
    Scale::tiny()
}

/// Pre-caches a one-site plan for an arch/classes pair so the Fig. 5 bench
/// measures the ε-sweep rather than the Fig. 4 search.
fn seed_plan(arch: ArchId, classes: usize) {
    let key = format!("{}_{classes}c_w{:.4}_plan", arch.name(), tiny().width);
    let plan = NoisePlan {
        vdd: 0.68,
        sites: vec![PlannedSite {
            site_index: 0,
            config: HybridMemoryConfig::new(HybridWordConfig::new(3, 5).unwrap(), 0.68).unwrap(),
        }],
    };
    store_plan(&cache_dir(), &key, &plan).ok();
}

fn short(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_mu_sweep", |b| {
        b.iter(|| fig2_mu_sweep(black_box(&[0.6, 0.65, 0.7, 0.75, 0.8])));
    });
}

fn bench_tables_1_2(c: &mut Criterion) {
    // the table experiments are dominated by the Fig. 4 search; bench one
    // single-threshold search over VGG8's 9 sites with a 16-image probe
    let spec = ArchId::Vgg8.build(4, tiny().width, 1).unwrap();
    let images =
        ahw_tensor::rng::uniform(&[16, 3, 32, 32], 0.0, 1.0, &mut ahw_tensor::rng::seeded(2));
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let config = SelectionConfig {
        improvement_threshold: 0.0,
        batch: 16,
        search_subset: 16,
        ..SelectionConfig::default()
    };
    let mut group = c.benchmark_group("tables_1_2");
    short(&mut group);
    group.bench_function("fig4_search_vgg8_tiny", |b| {
        b.iter(|| select_noise_sites(&spec, &images, &labels, &config).unwrap());
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    seed_plan(ArchId::Vgg19, 4);
    let mut group = c.benchmark_group("fig5");
    short(&mut group);
    group.bench_function("fig5_vgg19_tiny", |b| {
        b.iter(|| fig5_al_sweep(ArchId::Vgg19, 4, &tiny()).unwrap());
    });
    group.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fig7");
    short(&mut group);
    group.bench_function("fig6_vgg8_tiny", |b| {
        b.iter(|| crossbar_mode_sweep(ArchId::Vgg8, 4, &[16], &tiny()).unwrap());
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    short(&mut group);
    group.bench_function("table3_tiny", |b| {
        b.iter(|| table3_size_study(&tiny()).unwrap());
    });
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    short(&mut group);
    group.bench_function("fig8a_rmin_tiny", |b| {
        b.iter(|| r_min_study(&tiny(), 8.0 / 255.0).unwrap());
    });
    group.bench_function("fig8bc_defenses_tiny", |b| {
        b.iter(|| defense_comparison_on(ArchId::Vgg8, 4, &tiny(), 8.0 / 255.0).unwrap());
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig2,
    bench_tables_1_2,
    bench_fig5,
    bench_fig6_fig7,
    bench_table3,
    bench_fig8
);
criterion_main!(figures);

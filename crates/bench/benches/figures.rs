//! One benchmark per paper table/figure, exercising the same code the
//! `exp_*` binaries run, at [`Scale::tiny`] and with trained checkpoints and
//! selection plans pre-cached so each iteration measures the *experiment*
//! cost, not training. The binaries produce the paper-scale numbers; these
//! benches track regeneration cost and double as end-to-end smoke tests.
//! Runs on the std-only harness ([`ahw_bench::harness`]).

use ahw_bench::experiments::{
    crossbar_mode_sweep, defense_comparison_on, fig2_mu_sweep, fig5_al_sweep, r_min_study,
    store_plan, table3_size_study,
};
use ahw_bench::harness::{black_box, Harness};
use ahw_bench::{cache_dir, Scale};
use ahw_core::hardware::{NoisePlan, PlannedSite};
use ahw_core::selection::{select_noise_sites, SelectionConfig};
use ahw_core::zoo::ArchId;
use ahw_sram::{HybridMemoryConfig, HybridWordConfig};

fn tiny() -> Scale {
    Scale::tiny()
}

/// Pre-caches a one-site plan for an arch/classes pair so the Fig. 5 bench
/// measures the ε-sweep rather than the Fig. 4 search.
fn seed_plan(arch: ArchId, classes: usize) {
    let key = format!("{}_{classes}c_w{:.4}_plan", arch.name(), tiny().width);
    let plan = NoisePlan {
        vdd: 0.68,
        sites: vec![PlannedSite {
            site_index: 0,
            config: HybridMemoryConfig::new(HybridWordConfig::new(3, 5).unwrap(), 0.68).unwrap(),
        }],
    };
    store_plan(&cache_dir(), &key, &plan).ok();
}

fn bench_fig2(h: &mut Harness) {
    h.bench("fig2_mu_sweep", || {
        black_box(fig2_mu_sweep(black_box(&[0.6, 0.65, 0.7, 0.75, 0.8])));
    });
}

fn bench_tables_1_2(h: &mut Harness) {
    // the table experiments are dominated by the Fig. 4 search; bench one
    // single-threshold search over VGG8's 9 sites with a 16-image probe
    if !h.matches("tables_1_2/fig4_search_vgg8_tiny") {
        return;
    }
    let spec = ArchId::Vgg8.build(4, tiny().width, 1).unwrap();
    let images =
        ahw_tensor::rng::uniform(&[16, 3, 32, 32], 0.0, 1.0, &mut ahw_tensor::rng::seeded(2));
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let config = SelectionConfig {
        improvement_threshold: 0.0,
        batch: 16,
        search_subset: 16,
        ..SelectionConfig::default()
    };
    h.bench("tables_1_2/fig4_search_vgg8_tiny", || {
        black_box(select_noise_sites(&spec, &images, &labels, &config).unwrap());
    });
}

fn bench_fig5(h: &mut Harness) {
    seed_plan(ArchId::Vgg19, 4);
    h.bench("fig5/fig5_vgg19_tiny", || {
        black_box(fig5_al_sweep(ArchId::Vgg19, 4, &tiny()).unwrap());
    });
}

fn bench_fig6_fig7(h: &mut Harness) {
    h.bench("fig6_fig7/fig6_vgg8_tiny", || {
        black_box(crossbar_mode_sweep(ArchId::Vgg8, 4, &[16], &tiny()).unwrap());
    });
}

fn bench_table3(h: &mut Harness) {
    h.bench("table3/table3_tiny", || {
        black_box(table3_size_study(&tiny()).unwrap());
    });
}

fn bench_fig8(h: &mut Harness) {
    h.bench("fig8/fig8a_rmin_tiny", || {
        black_box(r_min_study(&tiny(), 8.0 / 255.0).unwrap());
    });
    h.bench("fig8/fig8bc_defenses_tiny", || {
        black_box(defense_comparison_on(ArchId::Vgg8, 4, &tiny(), 8.0 / 255.0).unwrap());
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_fig2(&mut h);
    bench_tables_1_2(&mut h);
    bench_fig5(&mut h);
    bench_fig6_fig7(&mut h);
    bench_table3(&mut h);
    bench_fig8(&mut h);
    h.finish();
}

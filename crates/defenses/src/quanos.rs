use ahw_nn::{ActivationHook, Mode, NnError, Sequential, Site};
use ahw_tensor::quant::fake_quantize;
use ahw_tensor::Tensor;
use std::sync::Arc;

/// Deterministic activation quantization hook (fake-quantize to `bits`).
#[derive(Debug, Clone, Copy)]
pub struct QuantizeHook {
    /// Bit width of the activation grid.
    pub bits: u8,
}

impl ActivationHook for QuantizeHook {
    fn apply(&self, x: &Tensor) -> Tensor {
        fake_quantize(x, self.bits).unwrap_or_else(|_| x.clone())
    }

    fn describe(&self) -> String {
        format!("activation quantization ({}b)", self.bits)
    }
}

/// Adversarial Noise Sensitivity of one top-level layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSensitivity {
    /// Index into the model's top-level layer list.
    pub layer: usize,
    /// The layer's description.
    pub describe: String,
    /// ANS: `‖A_adv − A_clean‖ / ‖A_clean‖` at this layer's output.
    pub ans: f32,
    /// Bit width assigned by [`Quanos::apply`] (0 before assignment).
    pub bits: u8,
}

/// QUANOS-style hybrid quantization (Panda, *QUANOS: adversarial noise
/// sensitivity driven hybrid quantization of neural networks*).
///
/// The *Adversarial Noise Sensitivity* of layer ℓ measures how strongly an
/// adversarial input perturbs that layer's activations relative to their
/// clean magnitude. QUANOS quantizes the most sensitive layers hardest —
/// quantization noise where the adversary acts, full precision where it
/// does not — yielding an energy-efficient *and* more robust model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quanos {
    /// FGSM strength used to produce the calibration adversaries.
    pub calib_epsilon: f32,
    /// Bits assigned to the most sensitive layer.
    pub min_bits: u8,
    /// Bits assigned to the least sensitive layer (and to weights of
    /// unranked layers).
    pub max_bits: u8,
}

impl Default for Quanos {
    fn default() -> Self {
        Quanos {
            calib_epsilon: 0.05,
            min_bits: 4,
            max_bits: 8,
        }
    }
}

impl Quanos {
    /// Computes per-layer ANS on a calibration batch.
    ///
    /// Runs the model layer-by-layer on clean and FGSM-perturbed inputs and
    /// compares activations at every layer output that has parameters
    /// upstream of it (all layers are reported; parameter-free layers like
    /// pooling inherit their sensitivity naturally).
    ///
    /// # Errors
    ///
    /// Propagates model errors; [`NnError::BadConfig`] for an empty model.
    pub fn analyze(
        &self,
        model: &Sequential,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<Vec<LayerSensitivity>, NnError> {
        if model.is_empty() {
            return Err(NnError::BadConfig("cannot analyze an empty model".into()));
        }
        // craft calibration adversaries against the model itself
        let mut grad_model = model.clone();
        let (_, grad) = grad_model.input_gradient(images, labels, Mode::Eval)?;
        let mut adv = images.clone();
        for (a, g) in adv.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            if *g != 0.0 {
                *a = (*a + self.calib_epsilon * g.signum()).clamp(0.0, 1.0);
            }
        }
        // walk the layers once for each input, recording ANS per output
        let mut sens = Vec::with_capacity(model.len());
        let mut clean = images.clone();
        let mut dirty = adv;
        for i in 0..model.len() {
            clean = model.layer(i).forward_infer(&clean)?;
            dirty = model.layer(i).forward_infer(&dirty)?;
            let diff = dirty.sub(&clean)?.norm();
            let base = clean.norm().max(1e-12);
            sens.push(LayerSensitivity {
                layer: i,
                describe: model.layer(i).describe(),
                ans: diff / base,
                bits: 0,
            });
        }
        Ok(sens)
    }

    /// Builds the QUANOS-quantized model: per-layer weight bit-widths are
    /// assigned by ANS rank (most sensitive → `min_bits`, least →
    /// `max_bits`, linear in between), weights are fake-quantized to those
    /// widths, and matching activation-quantization hooks are installed
    /// where possible.
    ///
    /// Returns the defended model and the sensitivity table with assigned
    /// bits filled in.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    pub fn apply(
        &self,
        model: &Sequential,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<(Sequential, Vec<LayerSensitivity>), NnError> {
        let mut sens = self.analyze(model, images, labels)?;
        // rank layers by ANS (descending): rank 0 = most sensitive
        let mut order: Vec<usize> = (0..sens.len()).collect();
        order.sort_by(|&a, &b| {
            sens[b]
                .ans
                .partial_cmp(&sens[a].ans)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let span = (self.max_bits - self.min_bits) as f32;
        let denom = (sens.len().saturating_sub(1)).max(1) as f32;
        for (rank, &layer_idx) in order.iter().enumerate() {
            let bits = self.min_bits as f32 + span * rank as f32 / denom;
            sens[layer_idx].bits = bits.round() as u8;
        }
        let mut defended = model.clone();
        // fake-quantize each layer's weights to its assigned width
        let mut error: Option<NnError> = None;
        defended.visit_state(&mut |name, tensor| {
            if error.is_some() || !name.ends_with(".weight") || tensor.rank() != 2 {
                return;
            }
            // names look like "layers.{i}.weight" or "layers.{i}.conv1.weight"
            let idx = name
                .strip_prefix("layers.")
                .and_then(|rest| rest.split('.').next())
                .and_then(|tok| tok.parse::<usize>().ok());
            if let Some(i) = idx {
                let bits = sens.get(i).map_or(self.max_bits, |s| s.bits.max(1));
                match fake_quantize(tensor, bits) {
                    Ok(q) => *tensor = q,
                    Err(e) => error = Some(NnError::Tensor(e)),
                }
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        // activation quantization hooks (best effort: layers without an
        // Output slot — e.g. Flatten — are skipped)
        for s in &sens {
            let hook: Arc<dyn ActivationHook> = Arc::new(QuantizeHook {
                bits: s.bits.max(1),
            });
            let _ = defended.set_hook(Site::output(s.layer), Some(hook));
        }
        Ok((defended, sens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahw_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use ahw_tensor::rng::{seeded, uniform};

    fn convnet(seed: u64) -> Sequential {
        let mut rng = seeded(seed);
        let mut m = Sequential::new();
        m.push(Conv2d::new(3, 4, 3, 1, 1, &mut rng).unwrap());
        m.push(ReLU::new());
        m.push(MaxPool2d::new(2, 2));
        m.push(Flatten::new());
        m.push(Linear::new(4 * 4 * 4, 3, &mut rng).unwrap());
        m
    }

    fn calib(seed: u64) -> (Tensor, Vec<usize>) {
        let x = uniform(&[6, 3, 8, 8], 0.0, 1.0, &mut seeded(seed));
        (x, vec![0, 1, 2, 0, 1, 2])
    }

    #[test]
    fn analyze_reports_every_layer() {
        let model = convnet(1);
        let (x, y) = calib(2);
        let sens = Quanos::default().analyze(&model, &x, &y).unwrap();
        assert_eq!(sens.len(), model.len());
        for s in &sens {
            assert!(s.ans.is_finite());
            assert!(s.ans >= 0.0);
        }
    }

    #[test]
    fn larger_calibration_epsilon_raises_ans() {
        let model = convnet(3);
        let (x, y) = calib(4);
        let small = Quanos {
            calib_epsilon: 0.01,
            ..Quanos::default()
        };
        let large = Quanos {
            calib_epsilon: 0.2,
            ..Quanos::default()
        };
        let a = small.analyze(&model, &x, &y).unwrap();
        let b = large.analyze(&model, &x, &y).unwrap();
        assert!(b[0].ans > a[0].ans);
    }

    #[test]
    fn apply_assigns_bits_by_rank() {
        let model = convnet(5);
        let (x, y) = calib(6);
        let (_, sens) = Quanos::default().apply(&model, &x, &y).unwrap();
        let most = sens
            .iter()
            .max_by(|a, b| a.ans.partial_cmp(&b.ans).unwrap())
            .unwrap();
        let least = sens
            .iter()
            .min_by(|a, b| a.ans.partial_cmp(&b.ans).unwrap())
            .unwrap();
        assert_eq!(most.bits, 4);
        assert_eq!(least.bits, 8);
        for s in &sens {
            assert!((4..=8).contains(&s.bits));
        }
    }

    #[test]
    fn defended_model_still_classifies() {
        let model = convnet(7);
        let (x, y) = calib(8);
        let (defended, _) = Quanos::default().apply(&model, &x, &y).unwrap();
        let out = defended.forward_infer(&x).unwrap();
        assert_eq!(out.dims(), &[6, 3]);
        // quantization changes the computation
        assert_ne!(out, model.forward_infer(&x).unwrap());
    }

    #[test]
    fn rejects_empty_model() {
        let (x, y) = calib(9);
        assert!(Quanos::default()
            .analyze(&Sequential::new(), &x, &y)
            .is_err());
    }

    #[test]
    fn quantize_hook_is_deterministic() {
        let h = QuantizeHook { bits: 4 };
        let x = uniform(&[32], -1.0, 1.0, &mut seeded(10));
        assert_eq!(h.apply(&x), h.apply(&x));
        assert!(ActivationHook::describe(&h).contains("4b"));
    }
}

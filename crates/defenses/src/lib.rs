//! # ahw-defenses
//!
//! The two efficiency-driven *software* defenses the paper compares its
//! hardware-noise robustness against (Fig. 8(b)–(c)):
//!
//! * [`PixelDiscretization`] — Panda et al. \[6\]: restrict input pixels from
//!   8-bit to a coarser grid (4-bit, 2-bit) before inference, destroying the
//!   fine-grained perturbations FGSM/PGD rely on;
//! * [`Quanos`] — Panda \[8\]: a layer-wise hybrid quantization driven by the
//!   *Adversarial Noise Sensitivity* (ANS) of each layer — layers where
//!   adversarial inputs perturb activations the most get the fewest bits.
//!
//! Both defenses are built from the same quantization primitives as the
//! hardware substrates, so the comparison in `ahw-bench` is apples-to-apples.
//!
//! [`adversarial_fit`] additionally provides classic FGSM adversarial
//! training — the algorithmic gold standard the paper's introduction cites —
//! as a further reference point.

mod advtrain;
mod discretize;
mod quanos;

pub use advtrain::{adversarial_fit, AdvTrainConfig};
pub use discretize::{DiscretizeLayer, PixelDiscretization};
pub use quanos::{LayerSensitivity, Quanos, QuantizeHook};

use ahw_nn::{Layer, Mode, NnError, Sequential};
use ahw_tensor::quant::QuantParams;
use ahw_tensor::Tensor;

/// Input-space discretization (Panda et al., *Discretization based solutions
/// for secure machine learning against adversarial attacks*).
///
/// Pixels in `[0, 1]` are snapped to a `2^bits`-level grid. A perturbation
/// smaller than half a grid step is erased entirely; larger ones lose most
/// of their structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelDiscretization {
    bits: u8,
}

impl PixelDiscretization {
    /// Creates an `bits`-bit discretizer (the paper compares 4-bit).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for bits outside `1..=8`.
    pub fn new(bits: u8) -> Result<Self, NnError> {
        if bits == 0 || bits > 8 {
            return Err(NnError::BadConfig(format!(
                "pixel discretization bits must be 1..=8, got {bits}"
            )));
        }
        Ok(PixelDiscretization { bits })
    }

    /// The grid's bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Snaps a `[0, 1]` tensor onto the grid.
    pub fn apply(&self, x: &Tensor) -> Tensor {
        // fixed [0,1] grid (input domain is known), not per-tensor fitting:
        // the defense must be input-independent or it leaks a side channel
        let params =
            QuantParams::from_range(0.0, 1.0, self.bits).expect("bits validated in constructor");
        x.map(|v| params.dequantize(params.quantize(v)))
    }

    /// Returns `model` with the discretizer prepended as a layer, giving a
    /// defended end-to-end model. Gradients pass straight through the grid
    /// (BPDA — the standard way to attack discretization defenses).
    pub fn defend(&self, model: &Sequential) -> Sequential {
        let mut defended = Sequential::new();
        defended.push(DiscretizeLayer::from(*self));
        for i in 0..model.len() {
            defended.push_boxed(model.layer(i).clone_box());
        }
        defended
    }
}

/// [`PixelDiscretization`] as a network layer (identity gradient).
#[derive(Debug, Clone, Copy)]
pub struct DiscretizeLayer {
    defense: PixelDiscretization,
}

impl From<PixelDiscretization> for DiscretizeLayer {
    fn from(defense: PixelDiscretization) -> Self {
        DiscretizeLayer { defense }
    }
}

impl Layer for DiscretizeLayer {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor, NnError> {
        Ok(self.defense.apply(x))
    }

    fn forward_infer(&self, x: &Tensor) -> Result<Tensor, NnError> {
        Ok(self.defense.apply(x))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        // straight-through: the grid is piecewise constant, so the true
        // gradient is zero a.e.; BPDA substitutes the identity
        Ok(grad_out.clone())
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(*self)
    }

    fn describe(&self) -> String {
        format!("discretize({}b)", self.defense.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahw_nn::layers::Linear;
    use ahw_tensor::rng::{seeded, uniform};

    #[test]
    fn four_bit_grid_has_16_levels() {
        let d = PixelDiscretization::new(4).unwrap();
        let x = uniform(&[1000], 0.0, 1.0, &mut seeded(1));
        let y = d.apply(&x);
        let mut levels: Vec<i64> = y
            .as_slice()
            .iter()
            .map(|v| (v * 1e6).round() as i64)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 16, "{} distinct levels", levels.len());
    }

    #[test]
    fn small_perturbations_are_erased() {
        let d = PixelDiscretization::new(4).unwrap();
        // values near grid-cell centers so a 0.2-step nudge stays in-cell
        let x = Tensor::from_slice(&[0.4, 0.2, 0.8]);
        let step = 1.0 / 15.0;
        let perturbed = x.map(|v| v + step * 0.2);
        assert_eq!(d.apply(&x), d.apply(&perturbed));
    }

    #[test]
    fn idempotent() {
        let d = PixelDiscretization::new(2).unwrap();
        let x = uniform(&[64], 0.0, 1.0, &mut seeded(2));
        let once = d.apply(&x);
        assert_eq!(d.apply(&once), once);
    }

    #[test]
    fn rejects_bad_bits() {
        assert!(PixelDiscretization::new(0).is_err());
        assert!(PixelDiscretization::new(9).is_err());
    }

    #[test]
    fn defend_prepends_layer_and_preserves_output_shape() {
        let mut rng = seeded(3);
        let mut model = Sequential::new();
        model.push(Linear::new(4, 2, &mut rng).unwrap());
        let defended = PixelDiscretization::new(4).unwrap().defend(&model);
        assert_eq!(defended.len(), 2);
        let x = uniform(&[3, 4], 0.0, 1.0, &mut rng);
        assert_eq!(defended.forward_infer(&x).unwrap().dims(), &[3, 2]);
    }

    #[test]
    fn defended_model_has_straight_through_gradient() {
        let mut rng = seeded(4);
        let mut model = Sequential::new();
        model.push(Linear::new(4, 2, &mut rng).unwrap());
        let mut defended = PixelDiscretization::new(4).unwrap().defend(&model);
        let x = uniform(&[2, 4], 0.0, 1.0, &mut rng);
        let (_, dx) = defended.input_gradient(&x, &[0, 1], Mode::Eval).unwrap();
        assert!(dx.norm() > 0.0);
    }
}

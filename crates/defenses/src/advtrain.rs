//! Adversarial training (Madry et al.) — the algorithmic defense the
//! paper's introduction singles out as the strongest software baseline.
//!
//! Each mini-batch mixes clean examples with examples perturbed against the
//! *current* model, so the decision boundary is pushed away from the data.
//! Included so hardware-noise robustness can be compared against the
//! gold-standard software defense, not just the efficiency-driven ones.

use ahw_nn::train::Trainer;
use ahw_nn::{Mode, NnError, Sequential};
use ahw_tensor::rng::Rng;
use ahw_tensor::{ops, Tensor};

/// Configuration for [`adversarial_fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdvTrainConfig {
    /// FGSM strength used to craft the training adversaries.
    pub epsilon: f32,
    /// Fraction of each batch replaced by adversarial examples (0..=1).
    pub adversarial_fraction: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
}

impl Default for AdvTrainConfig {
    fn default() -> Self {
        AdvTrainConfig {
            epsilon: 0.05,
            adversarial_fraction: 0.5,
            batch_size: 32,
            epochs: 8,
        }
    }
}

/// Adversarially trains `model` in place using the supplied SGD `trainer`
/// for the parameter updates. Returns per-epoch mean losses.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] for inconsistent inputs; propagates layer
/// errors.
pub fn adversarial_fit<R: Rng>(
    model: &mut Sequential,
    trainer: &mut Trainer,
    images: &Tensor,
    labels: &[usize],
    config: &AdvTrainConfig,
    rng: &mut R,
) -> Result<Vec<f32>, NnError> {
    let n = images.dims()[0];
    if labels.len() != n || n == 0 || config.batch_size == 0 {
        return Err(NnError::BadConfig(
            "empty dataset, zero batch, or label/image mismatch".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.adversarial_fraction) {
        return Err(NnError::BadConfig(format!(
            "adversarial_fraction {} outside [0, 1]",
            config.adversarial_fraction
        )));
    }
    let item = images.len() / n;
    let xv = images.as_slice();
    let mut order: Vec<usize> = (0..n).collect();
    let mut losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let mut bd = images.dims().to_vec();
            bd[0] = chunk.len();
            let mut data = Vec::with_capacity(chunk.len() * item);
            let mut batch_labels = Vec::with_capacity(chunk.len());
            for &i in chunk {
                data.extend_from_slice(&xv[i * item..(i + 1) * item]);
                batch_labels.push(labels[i]);
            }
            let mut xb = Tensor::from_vec(data, &bd)?;
            // perturb the leading fraction of the batch against the current
            // model (one FGSM step, the classic Goodfellow recipe)
            let adv_count = ((chunk.len() as f32) * config.adversarial_fraction).round() as usize;
            if adv_count > 0 && config.epsilon > 0.0 {
                let adv = ahw_attacks_free_fgsm(model, &xb, &batch_labels, config.epsilon)?;
                let xbv = xb.as_mut_slice();
                xbv[..adv_count * item].copy_from_slice(&adv.as_slice()[..adv_count * item]);
            }
            let logits = model.forward(&xb, Mode::Train)?;
            let (loss, dlogits) = ops::cross_entropy_with_grad(&logits, &batch_labels)?;
            model.backward(&dlogits)?;
            trainer.step(model);
            epoch_loss += loss as f64;
            batches += 1;
        }
        losses.push((epoch_loss / batches.max(1) as f64) as f32);
    }
    Ok(losses)
}

/// FGSM without depending on `ahw-attacks` (which depends on nothing here,
/// but keeping `ahw-defenses` free of that edge avoids a cycle if attacks
/// ever want the defenses as baselines).
fn ahw_attacks_free_fgsm(
    model: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    epsilon: f32,
) -> Result<Tensor, NnError> {
    let (_, grad) = model.input_gradient(x, labels, Mode::Eval)?;
    let mut adv = x.clone();
    for (a, g) in adv.as_mut_slice().iter_mut().zip(grad.as_slice()) {
        if *g != 0.0 {
            *a = (*a + epsilon * g.signum()).clamp(0.0, 1.0);
        }
    }
    Ok(adv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahw_nn::layers::{Linear, ReLU};
    use ahw_nn::train::TrainConfig;
    use ahw_tensor::rng::{normal, seeded};

    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = seeded(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let center = if label == 0 { 0.44 } else { 0.56 };
            data.extend(
                normal(&[6], center, 0.05, &mut rng)
                    .into_vec()
                    .iter()
                    .map(|v| v.clamp(0.0, 1.0)),
            );
            labels.push(label);
        }
        (Tensor::from_vec(data, &[n, 6]).unwrap(), labels)
    }

    fn mlp(seed: u64) -> Sequential {
        let mut rng = seeded(seed);
        let mut m = Sequential::new();
        m.push(Linear::new(6, 24, &mut rng).unwrap());
        m.push(ReLU::new());
        m.push(Linear::new(24, 2, &mut rng).unwrap());
        m
    }

    #[test]
    fn adversarial_training_improves_robust_accuracy() {
        let (x, y) = blobs(240, 1);
        let (tx, ty) = blobs(120, 2);
        let eps = 0.12;

        // standard training
        let mut plain = mlp(3);
        let mut t1 = Trainer::new(TrainConfig {
            epochs: 10,
            lr: 0.1,
            ..TrainConfig::default()
        });
        t1.fit(&mut plain, &x, &y, &mut seeded(4)).unwrap();

        // adversarial training
        let mut robust = mlp(3);
        let mut t2 = Trainer::new(TrainConfig {
            epochs: 10,
            lr: 0.1,
            ..TrainConfig::default()
        });
        adversarial_fit(
            &mut robust,
            &mut t2,
            &x,
            &y,
            &AdvTrainConfig {
                epsilon: eps,
                epochs: 10,
                ..AdvTrainConfig::default()
            },
            &mut seeded(5),
        )
        .unwrap();

        // attack both with the same FGSM strength
        let attack_acc = |m: &Sequential| {
            let mut grad_model = m.clone();
            let adv = ahw_attacks_free_fgsm(&mut grad_model, &tx, &ty, eps).unwrap();
            m.accuracy(&adv, &ty, 60).unwrap()
        };
        let plain_adv = attack_acc(&plain);
        let robust_adv = attack_acc(&robust);
        assert!(
            robust_adv > plain_adv + 0.1,
            "adversarial training should raise robust accuracy: {robust_adv} vs {plain_adv}"
        );
    }

    #[test]
    fn rejects_bad_fraction() {
        let (x, y) = blobs(16, 6);
        let mut model = mlp(7);
        let mut trainer = Trainer::new(TrainConfig::default());
        let config = AdvTrainConfig {
            adversarial_fraction: 1.5,
            ..AdvTrainConfig::default()
        };
        assert!(
            adversarial_fit(&mut model, &mut trainer, &x, &y, &config, &mut seeded(8)).is_err()
        );
    }

    #[test]
    fn zero_epsilon_equals_standard_training_loss_scale() {
        let (x, y) = blobs(64, 9);
        let mut model = mlp(10);
        let mut trainer = Trainer::new(TrainConfig::default());
        let config = AdvTrainConfig {
            epsilon: 0.0,
            epochs: 2,
            ..AdvTrainConfig::default()
        };
        let losses =
            adversarial_fit(&mut model, &mut trainer, &x, &y, &config, &mut seeded(11)).unwrap();
        assert_eq!(losses.len(), 2);
        assert!(losses[1] <= losses[0] + 0.1);
    }
}
